//! The Execution Engine (Figure 2 of the paper).
//!
//! An execution-ready plan is a sequence of algorithms with parameters
//! and arguments. Middleware algorithms become pipelined `tango-xxl`
//! cursors; each `TRANSFER^M` issues a SELECT produced by the
//! Translator-To-SQL; each `TRANSFER^D` creates a uniquely named temp
//! table and bulk-loads its argument during `open()` (the paper:
//! "[init] fetches all tuples of the argument result set and copies
//! them into the DBMS"). Temp tables are dropped at the end of the query.
//!
//! Every cursor is instrumented: per-algorithm inclusive time and output
//! volume feed the adaptive cost-factor loop (`crate::feedback`).

use crate::cache::{self, MidCache, Residency};
use crate::cost::CostFactors;
use crate::error::{Result, TangoError};
use crate::opt::{self, Catalog, OptOptions};
use crate::phys::{Algo, PhysNode, Site};
use crate::{refresh, session, to_sql};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tango_algebra::{Batch, Logical, Relation, Schema, SortSpec, Tuple};
use tango_minidb::{Connection, DbCursor, ErrorClass};
use tango_stats::RelationStats;
use tango_trace::{Collector, SpanEvent, SpanSite, SpanSlot, Stopwatch};
use tango_xxl::{
    BoxCursor, CachedScan, Coalesce, Cursor, DupElim, ExecOpts, ExternalSort, Filter, MergeJoin,
    NestedLoopJoin, Project, Sort, TemporalAggregate, TemporalDiff, TemporalMergeJoin, VecScan,
};

/// Observed execution of one algorithm instance.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// The algorithm this step ran (with parameters).
    pub algo: Algo,
    /// Rendered label, e.g. `TAGGR^M`.
    pub label: String,
    /// Inclusive wall + wire time (children included), µs.
    pub inclusive_us: f64,
    /// Exclusive wall + wire time, µs.
    pub exclusive_us: f64,
    /// Tuples this step produced.
    pub out_rows: u64,
    /// Bytes this step produced.
    pub out_bytes: u64,
    /// DBMS server compute time included in this step (µs) — nonzero only
    /// for `TRANSFER^M`, whose query execution happens inside the DBMS.
    pub server_us: f64,
    /// Algorithm-specific counters (spilled runs, buffered groups, SQL
    /// round-trips, …) sampled from the cursor at close.
    pub counters: Vec<(&'static str, u64)>,
    /// Discrete events recorded while the step ran (wire `fault`s,
    /// `retry` rounds, mid-execution `replan`s, cache `evict`s and
    /// `invalidate`s), in order.
    pub events: Vec<SpanEvent>,
    /// Qualitative key/value annotations (`cache: hit|miss|bypass`), in
    /// order.
    pub annotations: Vec<(&'static str, String)>,
    /// Indices of child steps within the report.
    pub children: Vec<usize>,
}

impl StepReport {
    /// The site this step's algorithm evaluated on.
    pub fn site(&self) -> Site {
        self.algo.site()
    }

    /// The value of annotation `key`, if the step carries it.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }

    /// Serialize as a JSON object (schema documented in
    /// `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> String {
        use tango_trace::json::Object;
        let mut o = Object::new();
        o.string("op", &self.label);
        o.string(
            "site",
            match self.site() {
                Site::Middleware => "middleware",
                Site::Dbms => "dbms",
            },
        );
        o.number("inclusive_us", self.inclusive_us);
        o.number("exclusive_us", self.exclusive_us);
        o.number("rows", self.out_rows as f64);
        o.number("bytes", self.out_bytes as f64);
        o.number("server_us", self.server_us);
        if !self.annotations.is_empty() {
            let mut a = Object::new();
            for (k, v) in &self.annotations {
                a.string(k, v);
            }
            o.raw("annotations", &a.build());
        }
        if !self.counters.is_empty() {
            let mut c = Object::new();
            for (k, v) in &self.counters {
                c.number(k, *v as f64);
            }
            o.raw("counters", &c.build());
        }
        if !self.events.is_empty() {
            o.raw("events", &tango_trace::events_to_json(&self.events));
        }
        o.raw(
            "children",
            &format!(
                "[{}]",
                self.children.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
            ),
        );
        o.build()
    }
}

/// Whole-query execution report.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Result cardinality.
    pub rows: usize,
    /// Wall time of the whole execution (compute; excludes virtual wire).
    pub wall: Duration,
    /// Virtual wire time charged during this execution.
    pub wire: Duration,
    /// Per-algorithm observations (post-order). Empty when the plan ran
    /// on the untraced fast path.
    pub steps: Vec<StepReport>,
}

impl ExecReport {
    /// Total cost as the experiments report it: wall + simulated wire.
    pub fn total(&self) -> Duration {
        self.wall + self.wire
    }

    /// Serialize the whole report — totals plus the per-operator step
    /// array — as a JSON object.
    pub fn to_json(&self) -> String {
        use tango_trace::json::Object;
        let mut o = Object::new();
        o.number("rows", self.rows as f64);
        o.number("wall_us", self.wall.as_secs_f64() * 1e6);
        o.number("wire_us", self.wire.as_secs_f64() * 1e6);
        o.number("total_us", self.total().as_secs_f64() * 1e6);
        let steps = self.steps.iter().map(StepReport::to_json).collect::<Vec<_>>().join(",");
        o.raw("steps", &format!("[{steps}]"));
        o.build()
    }
}

/// Execute an optimized physical plan against the DBMS connection,
/// returning the materialized result and the execution report with
/// per-operator spans (the adaptive feedback loop consumes them).
pub fn execute(conn: &Connection, plan: &PhysNode) -> Result<(Relation, ExecReport)> {
    execute_with(conn, plan, true)
}

/// [`execute`] with tracing control. With `trace == false` no cursor is
/// wrapped and nothing is measured per tuple — the bare operator
/// pipeline runs (the report's `steps` comes back empty, only the
/// whole-query totals are filled in).
pub fn execute_with(
    conn: &Connection,
    plan: &PhysNode,
    trace: bool,
) -> Result<(Relation, ExecReport)> {
    execute_cached(conn, plan, trace, None)
}

/// [`execute_with`] against a middleware relation cache. Every
/// `TRANSFER^M` consults the cache: a **hit** serves the resident copy
/// through a [`CachedScan`] without issuing any SQL (zero wire, zero
/// server time); a **miss** streams normally and, if the transfer drains
/// to completion without faulting or re-planning, populates the cache; a
/// **bypass** (uncacheable fragment, see [`cache::fragment_key`])
/// streams normally and is annotated as such. With `cache == None`
/// behavior is byte-identical to [`execute_with`].
pub fn execute_cached(
    conn: &Connection,
    plan: &PhysNode,
    trace: bool,
    cache: Option<&Arc<MidCache>>,
) -> Result<(Relation, ExecReport)> {
    execute_cached_opts(conn, plan, trace, cache, ExecOpts::default())
}

/// [`execute_cached`] with explicit per-execution knobs (batch size and
/// worker-pool width for the morsel-parallel operators). The default
/// `ExecOpts` reproduces [`execute_cached`] exactly.
pub fn execute_cached_opts(
    conn: &Connection,
    plan: &PhysNode,
    trace: bool,
    cache: Option<&Arc<MidCache>>,
    exec: ExecOpts,
) -> Result<(Relation, ExecReport)> {
    execute_cached_full(conn, plan, trace, cache, exec, CostFactors::default())
}

/// [`execute_cached_opts`] with explicit cost factors — what the
/// per-`TRANSFER^M` cache-maintenance decision (refresh-by-delta vs
/// refetch vs drop, see [`cache::maintenance_choice`]) prices with. The
/// session threads its calibrated/adapted factors through here; the
/// default factors reproduce [`execute_cached_opts`] exactly.
pub fn execute_cached_full(
    conn: &Connection,
    plan: &PhysNode,
    trace: bool,
    cache: Option<&Arc<MidCache>>,
    exec: ExecOpts,
    factors: CostFactors,
) -> Result<(Relation, ExecReport)> {
    if plan.algo.site() != Site::Middleware {
        return Err(TangoError::Exec(
            "plan root must be middleware-resident (delivery to the client)".into(),
        ));
    }
    // meter this session's wire alone — the link clock is shared with
    // every other session on the database and would cross-charge
    let wire_before = conn.wire_time();
    let mut ctx = Ctx::new(conn, trace, cache, exec, factors);
    let started = Instant::now();
    let result = (|| -> Result<Relation> {
        let mut root = ctx.build_mid(plan)?;
        root.open()?;
        let schema = root.schema().clone();
        let mut rows = Vec::new();
        // drive the root batch-at-a-time: one virtual dispatch per batch
        // instead of one per row
        while let Some(b) = root.next_batch_of(exec.batch_rows)? {
            rows.extend(b.into_rows());
        }
        root.close()?;
        Ok(Relation::new(schema, rows))
    })();
    let wall = started.elapsed();
    // drop temp tables whatever happened ("the table must be dropped at
    // the end of the query")
    for t in &ctx.temp_tables {
        let _ = conn.execute(&format!("DROP TABLE IF EXISTS {t}"));
    }
    let result = result?;
    let wire = conn.wire_time().saturating_sub(wire_before);
    let steps = resolve_steps(ctx.collector, ctx.algos);
    let report = ExecReport { rows: result.len(), wall, wire, steps };
    Ok((result, report))
}

/// Resolve collected spans into step reports.
fn resolve_steps(collector: Collector, algos: Vec<Algo>) -> Vec<StepReport> {
    collector
        .finish()
        .into_iter()
        .zip(algos)
        .map(|(span, algo)| StepReport {
            algo,
            label: span.name,
            inclusive_us: span.inclusive_us,
            exclusive_us: span.exclusive_us,
            out_rows: span.rows,
            out_bytes: span.bytes,
            server_us: span.server_us,
            counters: span.counters,
            events: span.events,
            annotations: span.annotations,
            children: span.children,
        })
        .collect()
}

/// Everything the mid-query re-planner needs in order to re-run the
/// Volcano optimizer over the unexecuted remainder of a plan (see
/// `docs/ADAPTIVITY.md`).
pub struct AdaptiveOptions {
    /// The catalog snapshot the original optimization used.
    pub catalog: Catalog,
    /// Current cost factors.
    pub factors: CostFactors,
    /// Optimizer knobs; re-optimization runs with the same rule groups
    /// (and the same, possibly deliberately naive, estimation mode).
    pub opt: OptOptions,
    /// Cache-residency snapshot for `TRANSFER^M` enforcer pricing.
    pub residency: Residency,
    /// Trigger threshold: re-plan when actual and estimated rows at a
    /// pipeline breaker diverge by at least this factor, in either
    /// direction.
    pub ratio: f64,
    /// Histogram buckets for statistics derived from materializations
    /// (0 disables histograms).
    pub histogram_buckets: usize,
    /// Per-execution knobs (batch size, morsel-parallel worker pool).
    pub exec: ExecOpts,
}

/// The outcome of one adaptive execution.
pub struct AdaptiveRun {
    /// The query result.
    pub rel: Relation,
    /// The execution report; steps are in post-order of
    /// [`AdaptiveRun::plan`].
    pub report: ExecReport,
    /// The plan as actually executed: every staged breaker appears as a
    /// `MATSCAN^M` node whose child is the subtree that produced the
    /// materialization, and a triggered re-plan replaces everything
    /// above the materializations.
    pub plan: PhysNode,
    /// The catalog extended with the observed statistics of every
    /// materialization (what re-estimating [`AdaptiveRun::plan`] needs).
    pub catalog: Catalog,
    /// Cardinality-triggered re-optimizations performed.
    pub replans: usize,
}

/// Safety net against pathological re-plan loops: at most this many
/// breakers are staged per query.
const MAX_STAGES: usize = 32;

/// Execute a plan with mid-query adaptive re-optimization at pipeline
/// breakers.
///
/// The driver repeatedly finds the first unexecuted pipeline breaker
/// (`TRANSFER^M`, `SORT^M`, `XSORT^M`, `TAGGR^M`) whose ancestors are
/// all middleware-resident, runs it to completion, and materializes its
/// output in the middleware. When the materialized row count diverges
/// from the optimizer's estimate by at least `ratio` (in either
/// direction), the actuals are fed back as injected cardinalities and
/// the Volcano optimizer re-runs over the remainder of the plan — which
/// may flip operators between middleware and DBMS — pinned to the
/// delivery order the original plan promised, so results stay
/// byte-identical. The new remainder is spliced over the already
/// materialized outputs and execution continues. A breaker that already
/// degraded due to a wire fault mid-drain is never re-planned a second
/// time over the same observation.
///
/// Always traced: the monitor reads actuals from the spans.
pub fn execute_adaptive(
    conn: &Connection,
    plan: &PhysNode,
    cache: Option<&Arc<MidCache>>,
    cfg: AdaptiveOptions,
) -> Result<AdaptiveRun> {
    if plan.algo.site() != Site::Middleware {
        return Err(TangoError::Exec(
            "plan root must be middleware-resident (delivery to the client)".into(),
        ));
    }
    let AdaptiveOptions {
        mut catalog,
        factors,
        opt: options,
        residency,
        ratio,
        histogram_buckets,
        exec,
    } = cfg;
    let naive = options.naive_overlaps;
    let wire_before = conn.wire_time();
    let mut ctx = Ctx::new(conn, true, cache, exec, factors);
    let mut work = plan.clone();
    let mut mat_orders: HashMap<String, SortSpec> = HashMap::new();
    let mut replans = 0usize;
    // the delivery order the chosen plan promised — every re-optimized
    // remainder is pinned to it so the splice cannot change the result
    let pinned = delivered_order(&work, &mat_orders).project_onto(&work.schema);
    let started = Instant::now();
    let result = (|| -> Result<Relation> {
        for mat_seq in 0..MAX_STAGES {
            let Some(path) = find_breaker(&work, true) else { break };
            let breaker = node_at(&work, &path).clone();
            // what the optimizer believes this breaker will produce,
            // given everything observed so far
            let est_rows = session::estimate_plan_nodes_with(&breaker, &catalog, &factors, naive)
                .ok()
                .and_then(|v| v.first().map(|e| e.est_rows));
            // run the breaker to completion and materialize its output
            let (mut cur, breaker_idx) = ctx.build_mid_indexed(&breaker)?;
            cur.open()?;
            let schema = cur.schema().clone();
            let mut rows = Vec::new();
            while let Some(b) = cur.next_batch_of(exec.batch_rows)? {
                rows.extend(b.into_rows());
            }
            cur.close()?;
            let slot = ctx.collector.slot(breaker_idx).clone();
            let actual = rows.len();
            let rel = Relation::new(schema.clone(), rows);

            // register the materialization: observed statistics, the
            // order it holds, and the span that will serve it (created
            // now so span order stays the post-order of the final plan)
            let name = format!("#MAT{mat_seq}");
            let order = delivered_order(&breaker, &mat_orders);
            catalog.insert(
                name.to_uppercase(),
                (schema.clone(), RelationStats::from_relation(&rel, histogram_buckets)),
            );
            mat_orders.insert(name.clone(), order);
            let span = Some(ctx.new_slot(Algo::MatScanM(name.clone()), vec![breaker_idx]));
            ctx.mats.insert(name.clone(), MatEntry { rel, span });
            replace_at(
                &mut work,
                &path,
                PhysNode {
                    algo: Algo::MatScanM(name),
                    schema: breaker.schema.clone(),
                    children: vec![breaker],
                },
            );

            // the misestimate monitor — unless a wire fault already
            // re-planned this breaker mid-drain (never re-plan twice
            // over one observation)
            let divergence = est_rows.map(|est| {
                let e = est.max(1.0);
                let a = (actual as f64).max(1.0);
                (a / e).max(e / a)
            });
            let triggered =
                !slot.has_event("replan") && divergence.map(|d| d >= ratio).unwrap_or(false);
            if !triggered {
                continue;
            }
            let old_cost =
                session::estimate_plan_with(&remainder_only(&work), &catalog, &factors, naive).ok();
            let logical = phys_to_logical(&work)?;
            let Ok(new) = opt::reoptimize(
                &logical,
                pinned.clone(),
                catalog.clone(),
                factors,
                options,
                residency.clone(),
                mat_orders.clone(),
            ) else {
                // no feasible alternative: keep the running plan
                continue;
            };
            replans += 1;
            let gain = old_cost.map(|c| (c - new.cost).max(0.0)).unwrap_or(0.0);
            slot.add_event(
                "cardinality-replan",
                format!(
                    "est {est:.1} rows, actual {actual} ({div:.1}x off): \
                     remainder re-optimized, est gain {gain:.0}us",
                    est = est_rows.unwrap_or(0.0),
                    div = divergence.unwrap_or(0.0),
                ),
            );
            slot.add_counter("replans", 1);
            slot.add_counter("replan_gain_est", gain as u64);
            ctx.spliced = true;
            // splice: the optimizer returns bare MATSCAN^M leaves;
            // re-attach each one's consumed subtree for rendering
            let mut subtrees = HashMap::new();
            collect_mat_subtrees(&work, &mut subtrees);
            work = attach_mat_subtrees(new.plan, &subtrees);
        }
        // run what remains of the plan
        let mut root = ctx.build_mid(&work)?;
        root.open()?;
        let schema = root.schema().clone();
        let mut rows = Vec::new();
        while let Some(b) = root.next_batch_of(exec.batch_rows)? {
            rows.extend(b.into_rows());
        }
        root.close()?;
        Ok(Relation::new(schema, rows))
    })();
    let wall = started.elapsed();
    for t in &ctx.temp_tables {
        let _ = conn.execute(&format!("DROP TABLE IF EXISTS {t}"));
    }
    let rel = result?;
    let wire = conn.wire_time().saturating_sub(wire_before);
    let steps = resolve_steps(ctx.collector, ctx.algos);
    let report = ExecReport { rows: rel.len(), wall, wire, steps };
    Ok(AdaptiveRun { rel, report, plan: work, catalog, replans })
}

/// Pipeline breakers: operators that buffer (or can cheaply stage) their
/// entire output before the consumer reads a row.
fn is_breaker(a: &Algo) -> bool {
    matches!(a, Algo::TransferM | Algo::SortM(_) | Algo::SortXM(..) | Algo::TAggrM { .. })
}

/// Path of child indices to the first post-order pipeline breaker that
/// (a) is not the plan root, (b) has only middleware-resident ancestors
/// (the materialization must feed middleware operators for a splice to
/// be well-defined), and (c) has not already been consumed.
fn find_breaker(n: &PhysNode, is_root: bool) -> Option<Vec<usize>> {
    if matches!(n.algo, Algo::MatScanM(_)) || n.algo.site() != Site::Middleware {
        return None;
    }
    for (i, c) in n.children.iter().enumerate() {
        if let Some(mut p) = find_breaker(c, false) {
            p.insert(0, i);
            return Some(p);
        }
    }
    (!is_root && is_breaker(&n.algo)).then(Vec::new)
}

fn node_at<'p>(mut n: &'p PhysNode, path: &[usize]) -> &'p PhysNode {
    for &i in path {
        n = &n.children[i];
    }
    n
}

fn replace_at(n: &mut PhysNode, path: &[usize], new: PhysNode) {
    match path.split_first() {
        None => *n = new,
        Some((&i, rest)) => replace_at(&mut n.children[i], rest, new),
    }
}

/// The sort order a plan node's output is known to arrive in — a
/// conservative derivation (`none` when unknown) used to pin the
/// delivery order across a re-plan and to record what order each
/// materialization holds.
fn delivered_order(n: &PhysNode, mats: &HashMap<String, SortSpec>) -> SortSpec {
    let child = |i: usize| n.children.get(i).map(|c| delivered_order(c, mats)).unwrap_or_default();
    match &n.algo {
        Algo::SortM(s) | Algo::SortXM(s, _) | Algo::SortD(s) => s.clone(),
        Algo::TAggrM { group_by, .. } | Algo::TAggrD { group_by, .. } => {
            let mut cols = group_by.clone();
            cols.push("T1".into());
            SortSpec::by(cols)
        }
        Algo::MergeJoinM(eq) | Algo::TMergeJoinM(eq) => {
            SortSpec::by(eq.iter().map(|(l, _)| l.clone()))
        }
        Algo::MatScanM(name) => mats.get(name).cloned().unwrap_or_default(),
        // order-preserving pass-throughs
        Algo::TransferM
        | Algo::TransferD
        | Algo::FilterM(_)
        | Algo::FilterD(_)
        | Algo::DupElimM
        | Algo::DupElimD
        | Algo::CoalesceM
        | Algo::TDiffM => child(0),
        Algo::ProjectM(_) | Algo::ProjectD(_) => child(0).project_onto(&n.schema),
        _ => SortSpec::none(),
    }
}

/// Copy of the working plan with each `MATSCAN^M`'s rendered subtree
/// stripped, leaving only operators that still have work to do — the
/// basis for estimating the cost of the unexecuted remainder.
fn remainder_only(n: &PhysNode) -> PhysNode {
    let children = if matches!(n.algo, Algo::MatScanM(_)) {
        vec![]
    } else {
        n.children.iter().map(remainder_only).collect()
    };
    PhysNode { algo: n.algo.clone(), schema: n.schema.clone(), children }
}

/// Translate the unexecuted remainder of a physical plan back into a
/// logical tree for re-optimization. Transfers and sorts are physical
/// concerns the optimizer re-derives (the delivery order is pinned
/// separately); materializations become `Get`s that only the
/// `MATSCAN^M` implementation can resolve.
fn phys_to_logical(n: &PhysNode) -> Result<Logical> {
    let child =
        |i: usize| -> Result<Box<Logical>> { Ok(Box::new(phys_to_logical(&n.children[i])?)) };
    Ok(match &n.algo {
        Algo::MatScanM(t) | Algo::ScanD(t) => Logical::Get { table: t.clone() },
        Algo::TransferM | Algo::TransferD | Algo::SortM(_) | Algo::SortXM(..) | Algo::SortD(_) => {
            phys_to_logical(&n.children[0])?
        }
        Algo::FilterM(p) | Algo::FilterD(p) => {
            Logical::Select { pred: p.clone(), input: child(0)? }
        }
        Algo::ProjectM(items) | Algo::ProjectD(items) => {
            Logical::Project { items: items.clone(), input: child(0)? }
        }
        Algo::MergeJoinM(eq) | Algo::JoinD(eq) => {
            Logical::Join { eq: eq.clone(), left: child(0)?, right: child(1)? }
        }
        Algo::TMergeJoinM(eq) | Algo::TJoinD(eq) => {
            Logical::TJoin { eq: eq.clone(), left: child(0)?, right: child(1)? }
        }
        Algo::TAggrM { group_by, aggs } | Algo::TAggrD { group_by, aggs } => {
            Logical::TAggr { group_by: group_by.clone(), aggs: aggs.clone(), input: child(0)? }
        }
        Algo::DupElimM | Algo::DupElimD => Logical::DupElim { input: child(0)? },
        Algo::CoalesceM => Logical::Coalesce { input: child(0)? },
        Algo::TDiffM => Logical::Diff { left: child(0)?, right: child(1)? },
        Algo::ProductD => Logical::Product { left: child(0)?, right: child(1)? },
    })
}

/// Record each `MATSCAN^M` node (with its rendered subtree) by name.
fn collect_mat_subtrees(n: &PhysNode, out: &mut HashMap<String, PhysNode>) {
    if let Algo::MatScanM(name) = &n.algo {
        out.insert(name.clone(), n.clone());
        return;
    }
    for c in &n.children {
        collect_mat_subtrees(c, out);
    }
}

/// Replace each bare `MATSCAN^M` leaf in a freshly optimized remainder
/// with the recorded node that keeps the consumed subtree as its child.
fn attach_mat_subtrees(n: PhysNode, subtrees: &HashMap<String, PhysNode>) -> PhysNode {
    if let Algo::MatScanM(name) = &n.algo {
        if let Some(full) = subtrees.get(name) {
            return full.clone();
        }
        return n;
    }
    let PhysNode { algo, schema, children } = n;
    PhysNode {
        algo,
        schema,
        children: children.into_iter().map(|c| attach_mat_subtrees(c, subtrees)).collect(),
    }
}

/// Deferred cursor constructor: builds a cursor once its span's
/// server-time sink is known (see `TRANSFER^M` in `build_mid_indexed`).
type DeferredCursor = Box<dyn FnOnce(Option<Arc<SpanSlot>>) -> BoxCursor>;

struct Ctx<'a> {
    conn: &'a Connection,
    temp_tables: Vec<String>,
    collector: Collector,
    /// Algorithm of each collected span, index-aligned with the collector.
    algos: Vec<Algo>,
    temp_seq: usize,
    trace: bool,
    /// The middleware relation cache, when this execution runs with one.
    cache: Option<Arc<MidCache>>,
    /// Mid-query materializations produced by the adaptive driver, by
    /// name — what a `MATSCAN^M` leaf serves.
    mats: HashMap<String, MatEntry>,
    /// Set once a cardinality-triggered re-plan has spliced the running
    /// plan: spans created after that point are annotated so the
    /// cost-factor feedback loop skips their (mixed-plan) observations.
    spliced: bool,
    /// Per-execution knobs threaded into every operator constructor.
    exec: ExecOpts,
    /// Cost factors for the cache-maintenance decision (refresh vs
    /// refetch vs drop) at each `TRANSFER^M`.
    factors: CostFactors,
}

/// One mid-query materialization held by the engine.
struct MatEntry {
    /// The drained breaker output.
    rel: Relation,
    /// The `MATSCAN^M` span that will serve it, created eagerly at
    /// materialization time so span order stays the post-order of the
    /// final plan (`None` on the untraced path).
    span: Option<(usize, Arc<SpanSlot>)>,
}

/// What the cache decided for one `TRANSFER^M`, resolved at plan-build
/// time (before any SQL is issued).
enum CacheDecision {
    /// No cache configured — behave exactly as before the cache existed.
    Off,
    /// Fragment is uncacheable (temp scans / interior sort).
    Bypass,
    /// Resident and fresh: serve this relation, issue no SQL.
    Hit(cache::CachedRelation),
    /// Resident but stale, and refresh-by-delta succeeded at plan-build
    /// time: serve the merged fragment, issue no fragment SQL (the delta
    /// fetch was the only wire traffic).
    Refresh { rows: Arc<Vec<Tuple>>, bytes: u64, delta_bytes: u64 },
    /// Resident but stale, and the maintenance decision says the entry
    /// does not earn its keep: it was dropped, and the query streams
    /// normally *without* re-populating.
    Drop,
    /// Not resident (or stale and due a refetch): stream normally and
    /// populate on clean completion. `label` says why we are streaming
    /// (`miss` or `refetch`); `bail` carries the reason when a refresh
    /// attempt degraded here. `invalidated` lists uncoverable
    /// same-signature entries dropped during lookup; `deps` the
    /// `(table, version)` pairs read *before* the fragment's SQL runs,
    /// so a concurrent write always invalidates.
    Miss {
        cache: Arc<MidCache>,
        key: cache::FragmentKey,
        deps: Vec<(String, u64)>,
        invalidated: Vec<String>,
        label: &'static str,
        bail: Option<String>,
    },
}

impl<'a> Ctx<'a> {
    fn new(
        conn: &'a Connection,
        trace: bool,
        cache: Option<&Arc<MidCache>>,
        exec: ExecOpts,
        factors: CostFactors,
    ) -> Ctx<'a> {
        Ctx {
            conn,
            temp_tables: Vec::new(),
            collector: Collector::new(),
            algos: Vec::new(),
            temp_seq: 0,
            trace,
            cache: cache.cloned(),
            mats: HashMap::new(),
            spliced: false,
            exec,
            factors,
        }
    }

    fn new_slot(&mut self, algo: Algo, children: Vec<usize>) -> (usize, Arc<SpanSlot>) {
        let site = match algo.site() {
            Site::Middleware => SpanSite::Middleware,
            Site::Dbms => SpanSite::Dbms,
        };
        let label = algo.label();
        self.algos.push(algo);
        let (idx, slot) = self.collector.span(label, site, children);
        if self.spliced {
            slot.add_annotation("replan", "spliced");
        }
        (idx, slot)
    }

    /// Build the cursor for a middleware-resident node. Returns the cursor
    /// and its slot index.
    fn build_mid(&mut self, node: &PhysNode) -> Result<BoxCursor> {
        Ok(self.build_mid_indexed(node)?.0)
    }

    fn build_mid_indexed(&mut self, node: &PhysNode) -> Result<(BoxCursor, usize)> {
        // TRANSFER^M needs its span's server-time sink, which exists only
        // after the span is created: defer its construction.
        let mut server_sink: Option<DeferredCursor> = None;
        let (inner, child_ids): (BoxCursor, Vec<usize>) = match &node.algo {
            Algo::TransferM => {
                // lower the DBMS subtree: replace T^D descendants with temp
                // scans, building their loader cursors as prerequisites
                let (clean, prereqs, prereq_ids) = self.lower_dbms(&node.children[0])?;
                let sql = to_sql::render_select(&clean)?;
                let conn = self.conn.clone();
                let schema = node.schema.clone();
                let decision = self.consult_cache(&clean, &sql);
                server_sink = Some(Box::new(move |sink: Option<Arc<SpanSlot>>| -> BoxCursor {
                    let mut populate = None;
                    match decision {
                        CacheDecision::Hit(rel) => {
                            // serve the resident copy: no SQL, no wire
                            if let Some(s) = &sink {
                                s.add_annotation("cache", "hit");
                            }
                            return Box::new(CachedScan::new(schema, rel.rows, rel.bytes));
                        }
                        CacheDecision::Refresh { rows, bytes, delta_bytes } => {
                            // serve the delta-merged copy: no fragment SQL
                            if let Some(s) = &sink {
                                s.add_annotation("cache", "refresh");
                                s.add_event(
                                    "refresh",
                                    format!("merged {delta_bytes} delta bytes in place"),
                                );
                            }
                            return Box::new(CachedScan::new(schema, rows, bytes));
                        }
                        CacheDecision::Off => {}
                        CacheDecision::Bypass => {
                            if let Some(s) = &sink {
                                s.add_annotation("cache", "bypass");
                            }
                        }
                        CacheDecision::Drop => {
                            // the maintenance decision evicted the stale
                            // entry and declined to refill it
                            if let Some(s) = &sink {
                                s.add_annotation("cache", "drop");
                                s.add_event(
                                    "invalidate",
                                    "stale entry dropped: refill would outcost its future hits"
                                        .to_string(),
                                );
                            }
                        }
                        CacheDecision::Miss { cache, key, deps, invalidated, label, bail } => {
                            if let Some(s) = &sink {
                                s.add_annotation("cache", label);
                                if let Some(reason) = &bail {
                                    s.add_event("refresh", format!("refresh bailed: {reason}"));
                                }
                                for stale in &invalidated {
                                    s.add_event(
                                        "invalidate",
                                        format!("stale entry dropped: {stale}"),
                                    );
                                }
                            }
                            populate = Some(CachePopulate {
                                cache,
                                key,
                                deps,
                                rows: Vec::new(),
                                wire_start: Duration::ZERO,
                                server_us: 0.0,
                            });
                        }
                    }
                    Box::new(TransferMCursor {
                        conn,
                        sql,
                        schema,
                        // keep the cleaned fragment: if the DBMS side
                        // exhausts its retries, the fragment is re-planned
                        // with middleware operators (see `degrade`)
                        fragment: clean,
                        prereqs,
                        cur: None,
                        buf: VecDeque::new(),
                        fallback: None,
                        server_sink: sink,
                        populate,
                        populated_bytes: None,
                        round_trips: 0,
                        rows_emitted: 0,
                        wire_retries: 0,
                        wire_faults: 0,
                        replans: 0,
                    })
                }));
                // placeholder; replaced once the slot exists
                (Box::new(EmptyCursor { schema: node.schema.clone() }) as BoxCursor, prereq_ids)
            }
            Algo::FilterM(pred) => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(Filter::new(c, pred.clone())) as BoxCursor, vec![id])
            }
            Algo::ProjectM(items) => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(Project::new(c, items.clone())?) as BoxCursor, vec![id])
            }
            Algo::SortM(spec) => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(Sort::with_opts(c, spec.clone(), self.exec)) as BoxCursor, vec![id])
            }
            Algo::SortXM(spec, run_rows) => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (
                    Box::new(ExternalSort::with_opts(c, spec.clone(), *run_rows, self.exec))
                        as BoxCursor,
                    vec![id],
                )
            }
            Algo::MergeJoinM(eq) => {
                let (l, lid) = self.build_mid_indexed(&node.children[0])?;
                let (r, rid) = self.build_mid_indexed(&node.children[1])?;
                (Box::new(MergeJoin::with_opts(l, r, eq, self.exec)?) as BoxCursor, vec![lid, rid])
            }
            Algo::TMergeJoinM(eq) => {
                let (l, lid) = self.build_mid_indexed(&node.children[0])?;
                let (r, rid) = self.build_mid_indexed(&node.children[1])?;
                (
                    Box::new(TemporalMergeJoin::with_opts(l, r, eq, self.exec)?) as BoxCursor,
                    vec![lid, rid],
                )
            }
            Algo::TAggrM { group_by, aggs } => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (
                    Box::new(TemporalAggregate::with_opts(
                        c,
                        group_by.clone(),
                        aggs.clone(),
                        self.exec,
                    )?) as BoxCursor,
                    vec![id],
                )
            }
            Algo::DupElimM => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(DupElim::new(c)) as BoxCursor, vec![id])
            }
            Algo::CoalesceM => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(Coalesce::with_opts(c, self.exec)?) as BoxCursor, vec![id])
            }
            Algo::TDiffM => {
                let (l, lid) = self.build_mid_indexed(&node.children[0])?;
                let (r, rid) = self.build_mid_indexed(&node.children[1])?;
                (Box::new(TemporalDiff::new(l, r)?) as BoxCursor, vec![lid, rid])
            }
            // serve a mid-query materialization; its span was created
            // eagerly when the breaker drained, so reuse it rather than
            // appending a new one (children are kept for rendering only)
            Algo::MatScanM(name) => {
                let entry = self.mats.get(name).ok_or_else(|| {
                    TangoError::Exec(format!("unknown mid-query materialization {name}"))
                })?;
                let cursor: BoxCursor = Box::new(VecScan::from_parts(
                    entry.rel.schema().clone(),
                    entry.rel.tuples().to_vec(),
                ));
                return Ok(match (&entry.span, self.trace) {
                    (Some((idx, slot)), true) => {
                        let wrapped = Instrumented {
                            inner: cursor,
                            slot: slot.clone(),
                            conn: self.conn.clone(),
                            batches: 0,
                        };
                        (Box::new(wrapped) as BoxCursor, *idx)
                    }
                    _ => (cursor, 0),
                });
            }
            other => {
                return Err(TangoError::Exec(format!(
                    "{} is not a middleware algorithm",
                    other.label()
                )))
            }
        };
        if !self.trace {
            // untraced fast path: no wrapper, no per-tuple measurement
            let inner = match server_sink.take() {
                Some(cursor_builder) => cursor_builder(None),
                None => inner,
            };
            return Ok((inner, 0));
        }
        let (idx, slot) = self.new_slot(node.algo.clone(), child_ids);
        let inner = match server_sink.take() {
            Some(cursor_builder) => cursor_builder(Some(slot.clone())),
            None => inner,
        };
        let conn = self.conn.clone();
        Ok((Box::new(Instrumented { inner, slot, conn, batches: 0 }), idx))
    }

    /// Decide hit/refresh/refetch/drop/miss/bypass for one `TRANSFER^M`
    /// fragment. Dependency versions are read here — *before* the
    /// fragment's SQL is issued — so a write racing the query always
    /// invalidates the entry we would populate. A stale-but-delta-covered
    /// entry is settled by [`cache::maintenance_choice`] under the
    /// session's cost factors: the cheapest of refreshing it in place,
    /// refetching it, or dropping it without refill.
    fn consult_cache(&self, clean: &PhysNode, sql: &str) -> CacheDecision {
        let Some(cache) = &self.cache else { return CacheDecision::Off };
        let is_temp = |t: &str| t.to_uppercase().starts_with("TANGO_TMP_");
        let Some(key) = cache::fragment_key(clean, sql, &is_temp) else {
            cache.note_bypass();
            return CacheDecision::Bypass;
        };
        let version_of = |t: &str| self.conn.table_version(t);
        let refreshing = cache.refresh_enabled();
        let delta_bytes_of = |t: &str, since: u64| {
            if refreshing {
                self.conn.delta_bytes_since(t, since)
            } else {
                None
            }
        };
        // the `(table, version)` snapshot a populate would record, read
        // before any SQL; `None` = a referenced table has no version
        // (dictionary view, dropped mid-build): don't populate
        let read_deps = |key: &cache::FragmentKey| -> Option<Vec<(String, u64)>> {
            key.tables.iter().map(|t| self.conn.table_version(t).map(|v| (t.clone(), v))).collect()
        };
        let miss = |cache: &Arc<MidCache>,
                    key: cache::FragmentKey,
                    invalidated: Vec<String>,
                    label: &'static str,
                    bail: Option<String>| {
            match read_deps(&key) {
                None => {
                    cache.note_bypass();
                    CacheDecision::Bypass
                }
                Some(deps) => CacheDecision::Miss {
                    cache: cache.clone(),
                    key,
                    deps,
                    invalidated,
                    label,
                    bail,
                },
            }
        };
        match cache.lookup(&key, &version_of, &delta_bytes_of) {
            cache::Lookup::Hit(rel) => CacheDecision::Hit(rel),
            cache::Lookup::Stale { entry, invalidated } => {
                // address the entry by its *stored* order for the commit
                let mut addr = key.clone();
                addr.order = entry.order.clone();
                let supported = refresh::supported(clean, &entry.order);
                let choice = cache::maintenance_choice(
                    &self.factors,
                    entry.bytes,
                    entry.delta_bytes,
                    entry.fill_cost_us,
                    entry.hits,
                    supported,
                );
                match choice {
                    cache::Maintenance::Refresh => {
                        match refresh::try_refresh(self.conn, cache, clean, &entry) {
                            refresh::RefreshOutcome::Done { rows, new_deps, delta_bytes } => {
                                let bytes: u64 = rows.iter().map(|t| t.byte_size() as u64).sum();
                                // a losing race (entry evicted or already
                                // refreshed by a peer) only means our rows
                                // don't enter the cache; they are still
                                // the correct current result to serve
                                cache.refresh(&addr, rows.clone(), new_deps, delta_bytes);
                                CacheDecision::Refresh { rows, bytes, delta_bytes }
                            }
                            refresh::RefreshOutcome::Bail(reason) => {
                                cache.note_refresh_bail(&addr);
                                miss(cache, key, invalidated, "miss", Some(reason))
                            }
                        }
                    }
                    cache::Maintenance::Refetch => {
                        cache.remove(&addr);
                        miss(cache, key, invalidated, "refetch", None)
                    }
                    cache::Maintenance::Drop => {
                        cache.remove(&addr);
                        CacheDecision::Drop
                    }
                }
            }
            cache::Lookup::Miss { invalidated } => miss(cache, key, invalidated, "miss", None),
        }
    }

    /// Replace `T^D` nodes inside a DBMS fragment with temp-table scans;
    /// returns the cleaned fragment plus the loader cursors that must be
    /// opened before the fragment's SQL runs.
    fn lower_dbms(&mut self, node: &PhysNode) -> Result<(PhysNode, Vec<BoxCursor>, Vec<usize>)> {
        if node.algo == Algo::TransferD {
            let (input, input_id) = self.build_mid_indexed(&node.children[0])?;
            self.temp_seq += 1;
            let table = format!("TANGO_TMP_{}", self.temp_seq);
            self.temp_tables.push(table.clone());
            let scan = PhysNode {
                algo: Algo::ScanD(table.clone()),
                schema: node.schema.clone(),
                children: vec![],
            };
            let mut loader = TransferDCursor {
                conn: self.conn.clone(),
                table,
                schema: node.schema.clone(),
                input: Some(input),
                rows_loaded: 0,
                sink: None,
                wire_retries: 0,
                wire_faults: 0,
            };
            if !self.trace {
                return Ok((scan, vec![Box::new(loader)], vec![]));
            }
            let (idx, slot) = self.new_slot(Algo::TransferD, vec![input_id]);
            loader.sink = Some(slot.clone());
            let conn = self.conn.clone();
            let instrumented: BoxCursor =
                Box::new(Instrumented { inner: Box::new(loader), slot, conn, batches: 0 });
            return Ok((scan, vec![instrumented], vec![idx]));
        }
        if node.algo.site() == Site::Middleware {
            return Err(TangoError::Exec(format!(
                "middleware algorithm {} below a DBMS fragment without a transfer",
                node.algo.label()
            )));
        }
        let mut children = Vec::with_capacity(node.children.len());
        let mut prereqs = Vec::new();
        let mut ids = Vec::new();
        for c in &node.children {
            let (cc, mut p, mut i) = self.lower_dbms(c)?;
            children.push(cc);
            prereqs.append(&mut p);
            ids.append(&mut i);
        }
        Ok((
            PhysNode { algo: node.algo.clone(), schema: node.schema.clone(), children },
            prereqs,
            ids,
        ))
    }
}

/// Cursor wrapper measuring time spent in `open`/`next` — wall clock
/// *plus* any simulated wire time charged while the call ran (so the
/// feedback loop sees transfer costs the way the experiments report
/// them) — and the output volume.
struct Instrumented {
    inner: BoxCursor,
    slot: Arc<SpanSlot>,
    conn: Connection,
    /// Batches this operator produced (reported as a `batches` counter
    /// at close when the batch path ran).
    batches: u64,
}

impl Instrumented {
    fn measure<T>(&mut self, f: impl FnOnce(&mut BoxCursor) -> T) -> T {
        // the per-connection meter, not the shared link clock: other
        // sessions on the same link must not inflate this span
        let sw = Stopwatch::start(self.conn.wire_time());
        let r = f(&mut self.inner);
        self.slot.add_time(sw.elapsed(self.conn.wire_time()));
        r
    }
}

impl Cursor for Instrumented {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        self.measure(|c| c.open())
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        let r = self.measure(|c| c.next());
        if let Ok(Some(tup)) = &r {
            self.slot.add_row(tup.byte_size() as u64);
        }
        r
    }

    fn next_batch_of(&mut self, max_rows: usize) -> tango_xxl::Result<Option<Batch>> {
        // One stopwatch sample and one row/byte accumulation per *batch*
        // — the amortized path. Falling through to the default (which
        // loops `self.next`) would double-count rows via `add_row`.
        let r = self.measure(|c| c.next_batch_of(max_rows));
        if let Ok(Some(b)) = &r {
            self.batches += 1;
            self.slot.add_batch(b.len() as u64, b.byte_size() as u64);
        }
        r
    }

    fn close(&mut self) -> tango_xxl::Result<()> {
        // sample the operator's counters before it releases its state
        let mut counters = self.inner.counters();
        if self.batches > 0 {
            counters.push(("batches", self.batches));
        }
        self.slot.set_counters(counters);
        self.measure(|c| c.close())
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner.counters()
    }
}

/// Placeholder cursor swapped out before use (see `build_mid_indexed`).
struct EmptyCursor {
    schema: Arc<Schema>,
}

impl Cursor for EmptyCursor {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        Err(tango_xxl::ExecError::State("placeholder cursor used".into()))
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        Err(tango_xxl::ExecError::State("placeholder cursor used".into()))
    }
}

/// Map a classified DBMS error into the matching cursor error, keeping
/// the wire taxonomy intact for logic above.
fn wire_exec_err(e: &tango_minidb::DbError) -> tango_xxl::ExecError {
    match e.class() {
        ErrorClass::Transient => {
            tango_xxl::ExecError::Wire { fatal: false, timeout: false, msg: e.to_string() }
        }
        ErrorClass::Timeout => {
            tango_xxl::ExecError::Wire { fatal: false, timeout: true, msg: e.to_string() }
        }
        ErrorClass::Fatal => {
            tango_xxl::ExecError::Wire { fatal: true, timeout: false, msg: e.to_string() }
        }
        ErrorClass::Logic => tango_xxl::ExecError::Dbms(e.to_string()),
    }
}

/// Build a middleware evaluation of a DBMS plan fragment — the re-plan
/// fallback: every base relation (including already-loaded temp tables)
/// is fetched with a plain `SELECT *`-shaped `T^M`, and the fragment's
/// relational work runs on the XXL operators, with sorts inserted where
/// the merge-based algorithms need ordered inputs. This is the transfer
/// operator "flipped": `T^M ∘ fragment^D` becomes `fragment^M ∘ T^M`.
fn middleware_fallback(conn: &Connection, node: &PhysNode) -> tango_xxl::Result<BoxCursor> {
    let sorted = |c: BoxCursor, spec: SortSpec| -> BoxCursor { Box::new(Sort::new(c, spec)) };
    Ok(match &node.algo {
        Algo::ScanD(table) => {
            let cols: Vec<&str> = node.schema.attrs().iter().map(|a| a.name.as_str()).collect();
            let sql = format!("SELECT {} FROM {}", cols.join(", "), table);
            Box::new(FetchCursor {
                conn: conn.clone(),
                sql,
                schema: node.schema.clone(),
                cur: None,
            })
        }
        Algo::FilterD(pred) => {
            Box::new(Filter::new(middleware_fallback(conn, &node.children[0])?, pred.clone()))
        }
        Algo::ProjectD(items) => {
            Box::new(Project::new(middleware_fallback(conn, &node.children[0])?, items.clone())?)
        }
        Algo::SortD(spec) => sorted(middleware_fallback(conn, &node.children[0])?, spec.clone()),
        Algo::DupElimD => Box::new(DupElim::new(middleware_fallback(conn, &node.children[0])?)),
        Algo::JoinD(eq) => {
            let l = middleware_fallback(conn, &node.children[0])?;
            let r = middleware_fallback(conn, &node.children[1])?;
            let l = sorted(l, SortSpec::by(eq.iter().map(|(a, _)| a.clone())));
            let r = sorted(r, SortSpec::by(eq.iter().map(|(_, b)| b.clone())));
            Box::new(MergeJoin::new(l, r, eq)?)
        }
        Algo::TJoinD(eq) => {
            let l = middleware_fallback(conn, &node.children[0])?;
            let r = middleware_fallback(conn, &node.children[1])?;
            let l = sorted(l, SortSpec::by(eq.iter().map(|(a, _)| a.clone())));
            let r = sorted(r, SortSpec::by(eq.iter().map(|(_, b)| b.clone())));
            Box::new(TemporalMergeJoin::new(l, r, eq)?)
        }
        Algo::ProductD => {
            let l = middleware_fallback(conn, &node.children[0])?;
            let r = middleware_fallback(conn, &node.children[1])?;
            Box::new(NestedLoopJoin::new(l, r, None))
        }
        Algo::TAggrD { group_by, aggs } => {
            let child = &node.children[0];
            let mut keys = group_by.clone();
            if let Some((t1, _)) = child.schema.period() {
                keys.push(child.schema.attr(t1).name.clone());
            }
            let input = sorted(middleware_fallback(conn, child)?, SortSpec::by(keys));
            Box::new(TemporalAggregate::new(input, group_by.clone(), aggs.clone())?)
        }
        other => {
            return Err(tango_xxl::ExecError::State(format!(
                "cannot re-plan {} in the middleware",
                other.label()
            )))
        }
    })
}

/// Fetches one base relation for the re-plan fallback: a plain SELECT
/// over the same faulty link (its transfers still go through the
/// connection's retry loop).
struct FetchCursor {
    conn: Connection,
    sql: String,
    schema: Arc<Schema>,
    cur: Option<DbCursor>,
}

impl Cursor for FetchCursor {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        let cur = self.conn.query(&self.sql).map_err(|e| wire_exec_err(&e))?;
        if cur.schema().len() != self.schema.len() {
            return Err(tango_xxl::ExecError::Dbms(format!(
                "fallback fetch arity mismatch: expected {}, got {}",
                self.schema.len(),
                cur.schema().len()
            )));
        }
        self.cur = Some(cur);
        Ok(())
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        match &mut self.cur {
            Some(c) => c.fetch().map_err(|e| wire_exec_err(&e)),
            None => Err(tango_xxl::ExecError::State("fallback fetch not opened".into())),
        }
    }

    fn close(&mut self) -> tango_xxl::Result<()> {
        self.cur = None;
        Ok(())
    }
}

/// `TRANSFER^M`: issues the translated SELECT and streams the rows out
/// of the (wire-charged) DBMS cursor. Any `T^D` loaders feeding temp
/// tables referenced by the SQL are opened first.
///
/// Degradation: if the DBMS statement exhausts the connection's retry
/// budget (or times out) before any row was delivered, the cursor
/// **re-plans** — it evaluates its DBMS fragment with middleware
/// operators over plain base-relation fetches (`middleware_fallback`)
/// instead of failing the query, and records a `replan` event on its
/// span. Once rows have been emitted the failure propagates: a partial
/// result must never be silently restarted.
struct TransferMCursor {
    conn: Connection,
    sql: String,
    schema: Arc<Schema>,
    /// The cleaned DBMS fragment (temp scans in place of `T^D`), kept
    /// for re-planning.
    fragment: PhysNode,
    prereqs: Vec<BoxCursor>,
    cur: Option<DbCursor>,
    /// Rows of a prefetch batch beyond what the last `next_batch_of`
    /// request asked for, served before the next wire pull.
    buf: VecDeque<Tuple>,
    /// The middleware re-plan of `fragment`, once degraded.
    fallback: Option<BoxCursor>,
    /// Sink for the producing statement's server-side execution time
    /// and for fault/retry/replan events.
    server_sink: Option<Arc<SpanSlot>>,
    /// Pending cache population (a cache miss): rows are accumulated at
    /// wire-fetch time and inserted only if the stream drains cleanly.
    /// Dropped on degrade — a re-planned or partial result must never
    /// populate the cache.
    populate: Option<CachePopulate>,
    /// Byte size of the entry this cursor populated, once it has.
    populated_bytes: Option<u64>,
    round_trips: u64,
    rows_emitted: u64,
    wire_retries: u64,
    wire_faults: u64,
    replans: u64,
}

/// State carried by a `TRANSFER^M` that missed the cache and intends to
/// populate it on clean completion.
struct CachePopulate {
    cache: Arc<MidCache>,
    key: cache::FragmentKey,
    /// `(table, write-version)` pairs read before the SQL was issued.
    deps: Vec<(String, u64)>,
    /// Every row fetched off the wire so far, in stream order.
    rows: Vec<Tuple>,
    /// Connection wire clock when the transfer opened — the wire part of
    /// the entry's fill cost.
    wire_start: Duration,
    /// DBMS-reported execution time of the producing statement, µs.
    server_us: f64,
}

impl TransferMCursor {
    /// Sample the connection's fault/retry meters around a wire
    /// operation and record the deltas as span events + counters.
    fn note_wire_activity(&mut self, before: (u64, u64)) {
        let faults = self.conn.wire_faults() - before.0;
        let retries = self.conn.wire_retries() - before.1;
        self.wire_faults += faults;
        self.wire_retries += retries;
        if let Some(s) = &self.server_sink {
            if faults > 0 {
                s.add_event("fault", format!("{faults} wire fault(s) injected"));
            }
            if retries > 0 {
                s.add_event("retry", format!("{retries} transfer retr(y/ies) with backoff"));
            }
        }
    }

    fn meters(&self) -> (u64, u64) {
        (self.conn.wire_faults(), self.conn.wire_retries())
    }

    /// The graceful-degradation path: flip the transfer operator and
    /// evaluate the fragment in the middleware. Only transient/timeout
    /// failures degrade; everything else propagates.
    fn degrade(&mut self, when: &str, e: &tango_minidb::DbError) -> tango_xxl::Result<()> {
        match e.class() {
            ErrorClass::Transient | ErrorClass::Timeout => {}
            _ => return Err(wire_exec_err(e)),
        }
        // a fallback's rows were not produced by the keyed fragment's SQL
        // over a consistent base-table snapshot: never populate from it
        self.populate = None;
        self.replans += 1;
        if let Some(s) = &self.server_sink {
            s.add_event(
                "replan",
                format!(
                    "DBMS fragment failed at {when} ({e}); \
                     re-planned with middleware operators over base fetches"
                ),
            );
        }
        let mut fb = middleware_fallback(&self.conn, &self.fragment)?;
        fb.open()?;
        self.cur = None;
        self.fallback = Some(fb);
        Ok(())
    }

    /// Record rows fetched off the wire for a pending population.
    fn populate_rows(&mut self, rows: &[Tuple]) {
        if let Some(p) = &mut self.populate {
            p.rows.extend_from_slice(rows);
        }
    }

    /// The stream drained cleanly (no fault, no fallback, no error up to
    /// end-of-stream): admit the accumulated rows into the cache, with
    /// the measured wire + server time as the entry's refetch cost.
    fn finish_populate(&mut self) {
        let Some(p) = self.populate.take() else { return };
        let wire_us = self.conn.wire_time().saturating_sub(p.wire_start).as_secs_f64() * 1e6;
        let bytes: u64 = p.rows.iter().map(|t| t.byte_size() as u64).sum();
        let admission =
            p.cache.insert(&p.key, self.schema.clone(), p.rows, p.deps, wire_us + p.server_us);
        if admission.admitted {
            self.populated_bytes = Some(bytes);
        }
        if let Some(s) = &self.server_sink {
            match admission.outcome {
                cache::AdmitOutcome::Admitted | cache::AdmitOutcome::Oversized => {}
                // a racing session populated the same entry first; this
                // drain admits nothing (exactly-one-populate)
                cache::AdmitOutcome::Duplicate => {
                    s.add_event("populate-duplicate", "already populated by a concurrent session");
                }
                cache::AdmitOutcome::Rejected => {
                    s.add_event(
                        "admission-reject",
                        format!("{bytes}-byte entry lost the admission contest"),
                    );
                }
            }
            for (sql, b) in &admission.evicted {
                s.add_event("evict", format!("evicted {b}-byte entry: {sql}"));
            }
        }
    }
}

impl Cursor for TransferMCursor {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        for p in &mut self.prereqs {
            p.open()?;
        }
        if let Some(p) = &mut self.populate {
            p.wire_start = self.conn.wire_time();
        }
        let before = self.meters();
        match self.conn.query(&self.sql) {
            Ok(cur) => {
                self.note_wire_activity(before);
                if cur.schema().len() != self.schema.len() {
                    return Err(tango_xxl::ExecError::Dbms(format!(
                        "translated SQL arity mismatch: expected {}, got {}",
                        self.schema.len(),
                        cur.schema().len()
                    )));
                }
                if let Some(sink) = &self.server_sink {
                    sink.add_server_time(cur.server_time());
                }
                if let Some(p) = &mut self.populate {
                    p.server_us = cur.server_time().as_secs_f64() * 1e6;
                }
                self.round_trips += 1;
                self.cur = Some(cur);
                Ok(())
            }
            Err(e) => {
                self.note_wire_activity(before);
                self.degrade("submit", &e)
            }
        }
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        if let Some(fb) = &mut self.fallback {
            let r = fb.next();
            if let Ok(Some(_)) = &r {
                self.rows_emitted += 1;
            }
            return r;
        }
        if let Some(t) = self.buf.pop_front() {
            self.rows_emitted += 1;
            return Ok(Some(t));
        }
        match &mut self.cur {
            Some(c) => {
                let before = (self.conn.wire_faults(), self.conn.wire_retries());
                match c.fetch() {
                    Ok(t) => {
                        self.note_wire_activity(before);
                        match &t {
                            Some(tup) => {
                                self.rows_emitted += 1;
                                self.populate_rows(std::slice::from_ref(tup));
                            }
                            None => self.finish_populate(),
                        }
                        Ok(t)
                    }
                    Err(e) => {
                        self.note_wire_activity(before);
                        if self.rows_emitted == 0 {
                            // nothing delivered yet: safe to re-plan
                            self.degrade("fetch", &e)?;
                            self.next()
                        } else {
                            Err(wire_exec_err(&e))
                        }
                    }
                }
            }
            None => Err(tango_xxl::ExecError::State("TRANSFER^M not opened".into())),
        }
    }

    fn next_batch_of(&mut self, max_rows: usize) -> tango_xxl::Result<Option<Batch>> {
        let max = max_rows.max(1);
        if let Some(fb) = &mut self.fallback {
            let r = fb.next_batch_of(max);
            if let Ok(Some(b)) = &r {
                self.rows_emitted += b.len() as u64;
            }
            return r;
        }
        // serve overflow from the previous prefetch batch first
        if !self.buf.is_empty() {
            let take = max.min(self.buf.len());
            let rows: Vec<Tuple> = self.buf.drain(..take).collect();
            self.rows_emitted += rows.len() as u64;
            return Ok(Some(Batch::new(self.schema.clone(), rows)));
        }
        if self.cur.is_none() {
            return Err(tango_xxl::ExecError::State("TRANSFER^M not opened".into()));
        }
        // Aggregate prefetch batches until the requested batch is full —
        // the wire sees the same round trips and charges as fetching row
        // by row; only the hand-off granularity to the middleware
        // operators changes.
        let mut rows: Vec<Tuple> = Vec::new();
        while rows.len() < max {
            let before = (self.conn.wire_faults(), self.conn.wire_retries());
            let got = self.cur.as_mut().unwrap().fetch_batch();
            match got {
                Ok(Some(mut got)) => {
                    self.note_wire_activity(before);
                    self.populate_rows(&got);
                    if rows.is_empty() {
                        rows = got;
                    } else {
                        rows.append(&mut got);
                    }
                }
                Ok(None) => {
                    self.note_wire_activity(before);
                    self.finish_populate();
                    break;
                }
                Err(e) => {
                    self.note_wire_activity(before);
                    if self.rows_emitted == 0 && rows.is_empty() {
                        // nothing delivered yet: safe to re-plan, at
                        // batch granularity
                        self.degrade("fetch", &e)?;
                        return self.next_batch_of(max);
                    }
                    return Err(wire_exec_err(&e));
                }
            }
        }
        if rows.is_empty() {
            return Ok(None);
        }
        if rows.len() > max {
            self.buf.extend(rows.drain(max..));
        }
        self.rows_emitted += rows.len() as u64;
        Ok(Some(Batch::new(self.schema.clone(), rows)))
    }

    fn close(&mut self) -> tango_xxl::Result<()> {
        self.cur = None;
        self.buf.clear();
        if let Some(mut fb) = self.fallback.take() {
            fb.close()?;
        }
        for p in &mut self.prereqs {
            p.close()?;
        }
        Ok(())
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut c = vec![("sql_round_trips", self.round_trips)];
        if self.wire_retries > 0 {
            c.push(("wire_retries", self.wire_retries));
        }
        if self.wire_faults > 0 {
            c.push(("wire_faults", self.wire_faults));
        }
        if self.replans > 0 {
            c.push(("replans", self.replans));
        }
        if let Some(b) = self.populated_bytes {
            c.push(("cache_bytes", b));
        }
        c
    }
}

/// `TRANSFER^D`: during `open`, drains its argument and direct-path
/// loads it into a fresh DBMS table. Produces no tuples itself — it is a
/// prerequisite step, as in Figure 5 where the top `TRANSFER^M` "does
/// not take any arguments, but must be preceded by the `TRANSFER^D`".
struct TransferDCursor {
    conn: Connection,
    table: String,
    schema: Arc<Schema>,
    input: Option<BoxCursor>,
    rows_loaded: u64,
    /// Sink for fault/retry events raised during the bulk load.
    sink: Option<Arc<SpanSlot>>,
    wire_retries: u64,
    wire_faults: u64,
}

impl Cursor for TransferDCursor {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        let mut input = self
            .input
            .take()
            .ok_or_else(|| tango_xxl::ExecError::State("TRANSFER^D reopened".into()))?;
        input.open()?;
        let mut rows = Vec::new();
        while let Some(b) = input.next_batch()? {
            rows.extend(b.into_rows());
        }
        input.close()?;
        self.rows_loaded = rows.len() as u64;
        // Sample the connection meters around the load alone, so nested
        // `T^M` activity never shows up on this span.
        let before = (self.conn.wire_faults(), self.conn.wire_retries());
        let loaded = self.conn.load_direct(&self.table, self.schema.as_ref().clone(), rows);
        self.wire_faults += self.conn.wire_faults() - before.0;
        self.wire_retries += self.conn.wire_retries() - before.1;
        if let Some(s) = &self.sink {
            let faults = self.conn.wire_faults() - before.0;
            let retries = self.conn.wire_retries() - before.1;
            if faults > 0 {
                s.add_event("fault", format!("{faults} wire fault(s) injected during load"));
            }
            if retries > 0 {
                s.add_event("retry", format!("{retries} bulk-load retr(y/ies) with backoff"));
            }
        }
        loaded.map_err(|e| wire_exec_err(&e))?;
        Ok(())
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        Ok(None)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut c = vec![("rows_loaded", self.rows_loaded), ("sql_round_trips", 1)];
        if self.wire_retries > 0 {
            c.push(("wire_retries", self.wire_retries));
        }
        if self.wire_faults > 0 {
            c.push(("wire_faults", self.wire_faults));
        }
        c
    }
}

impl ExecReport {
    /// Find the first step running the same algorithm *kind* (parameters
    /// ignored for parameterized variants).
    pub fn exec_step(&self, algo: &Algo) -> Option<&StepReport> {
        self.steps.iter().find(|s| std::mem::discriminant(&s.algo) == std::mem::discriminant(algo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::PhysNode;
    use std::sync::Arc;
    use tango_algebra::{tup, AggFunc, AggSpec, Attr, Schema, SortSpec, Type};
    use tango_minidb::{Connection, Database};

    fn setup() -> Connection {
        let c = Connection::new(Database::in_memory());
        c.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        c.execute("INSERT INTO POSITION VALUES (1,'Tom',2,20),(1,'Jane',5,25),(2,'Tom',5,10)")
            .unwrap();
        c
    }

    fn scan(c: &Connection, table: &str) -> PhysNode {
        PhysNode {
            algo: Algo::ScanD(table.into()),
            schema: Arc::new(c.table_schema(table).unwrap()),
            children: vec![],
        }
    }

    fn un(algo: Algo, child: PhysNode) -> PhysNode {
        let schema = Arc::new(algo.output_schema(&[child.schema.as_ref()]).unwrap());
        PhysNode { algo, schema, children: vec![child] }
    }

    fn bin(algo: Algo, l: PhysNode, r: PhysNode) -> PhysNode {
        let schema = Arc::new(algo.output_schema(&[l.schema.as_ref(), r.schema.as_ref()]).unwrap());
        PhysNode { algo, schema, children: vec![l, r] }
    }

    /// The full Figure 5 shape: aggregate in the middleware, load the
    /// result back via TRANSFER^D, temporal-join in the DBMS, fetch.
    #[test]
    fn transfer_d_round_trip_executes_figure5() {
        let conn = setup();
        let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "COUNTofPosID")];
        let agg_m = un(
            Algo::TAggrM { group_by: vec!["PosID".into()], aggs },
            un(
                Algo::TransferM,
                un(Algo::SortD(SortSpec::by(["PosID", "T1"])), scan(&conn, "POSITION")),
            ),
        );
        let eq = vec![("PosID".to_string(), "PosID".to_string())];
        let plan = un(
            Algo::TransferM,
            un(
                Algo::SortD(SortSpec::by(["PosID"])),
                bin(Algo::TJoinD(eq), un(Algo::TransferD, agg_m), scan(&conn, "POSITION")),
            ),
        );
        let (rel, report) = execute(&conn, &plan).unwrap();
        assert_eq!(rel.len(), 5); // Figure 3(b)
                                  // temp table dropped afterwards
        assert!(!conn.database().table_names().iter().any(|t| t.starts_with("TANGO_TMP")));
        // report contains the T^D step with its input accounted
        let td = report.exec_step(&Algo::TransferD).expect("TRANSFER^D step missing");
        assert_eq!(td.out_rows, 0); // loader produces no stream
        assert!(report.steps.iter().any(|s| matches!(s.algo, Algo::TAggrM { .. })));
    }

    /// A failing plan must still clean up its temp tables.
    #[test]
    fn temp_tables_cleaned_on_failure() {
        let conn = setup();
        // TransferD feeding a TJoinD whose other side references a
        // missing table => the outer SQL fails after the load happened
        let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "C")];
        let agg_m = un(
            Algo::TAggrM { group_by: vec!["PosID".into()], aggs },
            un(
                Algo::TransferM,
                un(Algo::SortD(SortSpec::by(["PosID", "T1"])), scan(&conn, "POSITION")),
            ),
        );
        let ghost = PhysNode {
            algo: Algo::ScanD("GHOST".into()),
            schema: Arc::new(Schema::with_inferred_period(vec![
                Attr::new("PosID", Type::Int),
                Attr::new("T1", Type::Int),
                Attr::new("T2", Type::Int),
            ])),
            children: vec![],
        };
        let eq = vec![("PosID".to_string(), "PosID".to_string())];
        let plan = un(Algo::TransferM, bin(Algo::TJoinD(eq), un(Algo::TransferD, agg_m), ghost));
        assert!(execute(&conn, &plan).is_err());
        assert!(!conn.database().table_names().iter().any(|t| t.starts_with("TANGO_TMP")));
    }

    #[test]
    fn dbms_rooted_plans_are_rejected() {
        let conn = setup();
        let plan = scan(&conn, "POSITION");
        assert!(execute(&conn, &plan).is_err());
    }

    #[test]
    fn empty_results_flow_through() {
        let conn = setup();
        let plan = un(
            Algo::FilterM(tango_algebra::Expr::eq(
                tango_algebra::Expr::col("PosID"),
                tango_algebra::Expr::lit(999),
            )),
            un(Algo::TransferM, scan(&conn, "POSITION")),
        );
        let (rel, report) = execute(&conn, &plan).unwrap();
        assert!(rel.is_empty());
        assert_eq!(report.rows, 0);
        let _ = tup![1]; // keep the tup! import exercised
    }
}
