//! Physical machinery: evaluation sites, physical properties, the logical
//! operator payload for the memo, and the physical algorithm inventory.
//!
//! The key design move (mirroring the paper): **where an operation runs
//! is a physical property**. Required properties are pairs *(site,
//! ordering)*; the transfer algorithms `TRANSFER^M` / `TRANSFER^D` are
//! the *enforcers* of the site property exactly as `SORT^M` / `SORT^D`
//! enforce orderings. This is how the optimizer "divides the processing
//! between the middleware and the DBMS ... by appropriately inserting
//! transfer operations into query plans" (Section 2.1), and it subsumes
//! rules T1–T3 and T7–T8 structurally: a `T^M(T^D(r))` pair can never
//! appear in a winning plan because enforcers are only inserted when the
//! site actually changes.

use std::sync::Arc;
use tango_algebra::logical::{concat_schemas, taggr_schema, tjoin_schema};
use tango_algebra::{AggSpec, Expr, Logical, ProjItem, Schema, SortSpec};

/// Where a plan fragment is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Inside the DBMS (fragment becomes generated SQL).
    Dbms,
    /// Inside the middleware (fragment becomes XXL cursors).
    Middleware,
}

/// Required physical properties: evaluation site plus ordering. The
/// empty ordering means "any order".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Req {
    /// Required evaluation site.
    pub site: Site,
    /// Required ordering (empty = any).
    pub order: SortSpec,
}

impl Req {
    /// Middleware site with the given ordering.
    pub fn mid(order: SortSpec) -> Req {
        Req { site: Site::Middleware, order }
    }

    /// DBMS site with the given ordering.
    pub fn dbms(order: SortSpec) -> Req {
        Req { site: Site::Dbms, order }
    }

    /// The given site, any ordering.
    pub fn any(site: Site) -> Req {
        Req { site, order: SortSpec::none() }
    }
}

/// The logical operator payload stored in memo expressions. Children
/// live in the memo; note the absence of `Sort` and the transfers — both
/// are physical-property concerns (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TOp {
    /// Base-relation access.
    Get {
        /// The table name.
        table: String,
    },
    /// Selection.
    Select {
        /// The predicate.
        pred: Expr,
    },
    /// Generalized projection.
    Project {
        /// Output expressions with aliases.
        items: Vec<ProjItem>,
    },
    /// Regular equi join.
    Join {
        /// Join-attribute pairs (left, right).
        eq: Vec<(String, String)>,
    },
    /// Temporal equi join (plus period overlap).
    TJoin {
        /// Join-attribute pairs (left, right).
        eq: Vec<(String, String)>,
    },
    /// Cartesian product.
    Product,
    /// Temporal aggregation.
    TAggr {
        /// Grouping attributes.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Duplicate elimination.
    DupElim,
    /// Temporal coalescing.
    Coalesce,
    /// Temporal difference.
    Diff,
}

impl TOp {
    /// Reconstruct a [`Logical`] node (with dummy children) for the
    /// statistics-derivation machinery, which dispatches on the operator
    /// shape only.
    pub fn as_logical(&self) -> Logical {
        let dummy = || Box::new(Logical::Get { table: "_".into() });
        match self {
            TOp::Get { table } => Logical::Get { table: table.clone() },
            TOp::Select { pred } => Logical::Select { pred: pred.clone(), input: dummy() },
            TOp::Project { items } => Logical::Project { items: items.clone(), input: dummy() },
            TOp::Join { eq } => Logical::Join { eq: eq.clone(), left: dummy(), right: dummy() },
            TOp::TJoin { eq } => Logical::TJoin { eq: eq.clone(), left: dummy(), right: dummy() },
            TOp::Product => Logical::Product { left: dummy(), right: dummy() },
            TOp::TAggr { group_by, aggs } => {
                Logical::TAggr { group_by: group_by.clone(), aggs: aggs.clone(), input: dummy() }
            }
            TOp::DupElim => Logical::DupElim { input: dummy() },
            TOp::Coalesce => Logical::Coalesce { input: dummy() },
            TOp::Diff => Logical::Diff { left: dummy(), right: dummy() },
        }
    }

    /// Output schema given child schemas; `table_schema` resolves `Get`.
    pub fn output_schema(
        &self,
        children: &[&Schema],
        table_schema: &dyn Fn(&str) -> Option<Schema>,
    ) -> tango_algebra::Result<Schema> {
        use tango_algebra::AlgebraError;
        Ok(match self {
            TOp::Get { table } => table_schema(table)
                .ok_or_else(|| AlgebraError::Schema(format!("unknown table {table}")))?,
            TOp::Select { .. } | TOp::DupElim | TOp::Coalesce => children[0].clone(),
            TOp::Diff => children[0].clone(),
            TOp::Project { items } => {
                let mut attrs = Vec::with_capacity(items.len());
                for it in items {
                    let ty = tango_algebra::logical::infer_type(&it.expr, children[0])?;
                    attrs.push(tango_algebra::Attr::new(it.alias.clone(), ty));
                }
                Schema::with_inferred_period(attrs)
            }
            TOp::Join { .. } | TOp::Product => concat_schemas(children[0], children[1]),
            TOp::TJoin { eq } => tjoin_schema(eq, children[0], children[1])?,
            TOp::TAggr { group_by, aggs } => taggr_schema(group_by, aggs, children[0])?,
        })
    }

    /// Display name of the operator.
    pub fn name(&self) -> &'static str {
        match self {
            TOp::Get { .. } => "GET",
            TOp::Select { .. } => "SELECT",
            TOp::Project { .. } => "PROJECT",
            TOp::Join { .. } => "JOIN",
            TOp::TJoin { .. } => "TJOIN",
            TOp::Product => "PRODUCT",
            TOp::TAggr { .. } => "TAGGR",
            TOp::DupElim => "DUPELIM",
            TOp::Coalesce => "COALESCE",
            TOp::Diff => "DIFF",
        }
    }
}

/// Physical algorithms. Superscript convention from the paper:
/// `...M` runs in the middleware, `...D` in the DBMS.
#[derive(Debug, Clone, PartialEq)]
pub enum Algo {
    // -- middleware algorithms (tango-xxl cursors) --
    /// Middleware selection.
    FilterM(Expr),
    /// Middleware generalized projection.
    ProjectM(Vec<ProjItem>),
    /// Middleware in-memory sort.
    SortM(SortSpec),
    /// Middleware external merge sort; the second field is the run size
    /// in rows, derived from the middleware sort-memory budget.
    SortXM(SortSpec, usize),
    /// Middleware sort-merge equi join.
    MergeJoinM(Vec<(String, String)>),
    /// Middleware sort-merge temporal join.
    TMergeJoinM(Vec<(String, String)>),
    /// Middleware temporal aggregation.
    TAggrM {
        /// Grouping attributes.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Middleware duplicate elimination.
    DupElimM,
    /// Middleware temporal coalescing.
    CoalesceM,
    /// Middleware temporal difference.
    TDiffM,
    /// DBMS → middleware: issues a SELECT (Figure 5's `TRANSFER^M`).
    TransferM,
    /// Middleware scan over a mid-query materialized intermediate (the
    /// already-drained output of a pipeline breaker, by name). In a final
    /// executed plan the consumed breaker subtree is kept as this node's
    /// child for EXPLAIN ANALYZE; during re-optimization the node is a
    /// leaf.
    MatScanM(String),
    /// middleware → DBMS: CREATE TABLE + direct-path load (`TRANSFER^D`).
    TransferD,
    // -- generic DBMS algorithms (become SQL via the Translator) --
    /// DBMS base-table scan.
    ScanD(String),
    /// DBMS selection (a `WHERE` clause).
    FilterD(Expr),
    /// DBMS projection (a `SELECT` list).
    ProjectD(Vec<ProjItem>),
    /// DBMS sort (an `ORDER BY`).
    SortD(SortSpec),
    /// DBMS equi join.
    JoinD(Vec<(String, String)>),
    /// DBMS temporal join (equi join plus period predicates).
    TJoinD(Vec<(String, String)>),
    /// DBMS Cartesian product.
    ProductD,
    /// DBMS temporal aggregation (the paper's generated-SQL variant).
    TAggrD {
        /// Grouping attributes.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// DBMS duplicate elimination (`SELECT DISTINCT`).
    DupElimD,
}

impl Algo {
    /// Where this algorithm runs.
    pub fn site(&self) -> Site {
        match self {
            Algo::FilterM(_)
            | Algo::ProjectM(_)
            | Algo::SortM(_)
            | Algo::SortXM(..)
            | Algo::MergeJoinM(_)
            | Algo::TMergeJoinM(_)
            | Algo::TAggrM { .. }
            | Algo::DupElimM
            | Algo::CoalesceM
            | Algo::TDiffM
            | Algo::TransferM
            | Algo::MatScanM(_) => Site::Middleware,
            Algo::TransferD
            | Algo::ScanD(_)
            | Algo::FilterD(_)
            | Algo::ProjectD(_)
            | Algo::SortD(_)
            | Algo::JoinD(_)
            | Algo::TJoinD(_)
            | Algo::ProductD
            | Algo::TAggrD { .. }
            | Algo::DupElimD => Site::Dbms,
        }
    }

    /// Display name matching the paper's superscript notation.
    pub fn label(&self) -> String {
        match self {
            Algo::FilterM(_) => "FILTER^M".into(),
            Algo::ProjectM(_) => "PROJECT^M".into(),
            Algo::SortM(s) => format!("SORT^M [{s}]"),
            Algo::SortXM(s, _) => format!("XSORT^M [{s}]"),
            Algo::MergeJoinM(_) => "MERGEJOIN^M".into(),
            Algo::TMergeJoinM(_) => "TMERGEJOIN^M".into(),
            Algo::TAggrM { .. } => "TAGGR^M".into(),
            Algo::DupElimM => "DUPELIM^M".into(),
            Algo::CoalesceM => "COALESCE^M".into(),
            Algo::TDiffM => "TDIFF^M".into(),
            Algo::TransferM => "TRANSFER^M".into(),
            Algo::MatScanM(name) => format!("MATSCAN^M {name}"),
            Algo::TransferD => "TRANSFER^D".into(),
            Algo::ScanD(t) => format!("SCAN^D {t}"),
            Algo::FilterD(_) => "FILTER^D".into(),
            Algo::ProjectD(_) => "PROJECT^D".into(),
            Algo::SortD(s) => format!("SORT^D [{s}]"),
            Algo::JoinD(_) => "JOIN^D".into(),
            Algo::TJoinD(_) => "TJOIN^D".into(),
            Algo::ProductD => "PRODUCT^D".into(),
            Algo::TAggrD { .. } => "TAGGR^D".into(),
            Algo::DupElimD => "DUPELIM^D".into(),
        }
    }

    /// Output schema given child schemas.
    pub fn output_schema(&self, children: &[&Schema]) -> tango_algebra::Result<Schema> {
        Ok(match self {
            Algo::FilterM(_)
            | Algo::FilterD(_)
            | Algo::SortM(_)
            | Algo::SortXM(..)
            | Algo::SortD(_)
            | Algo::DupElimM
            | Algo::DupElimD
            | Algo::CoalesceM
            | Algo::TransferM
            | Algo::TransferD => children[0].clone(),
            Algo::TDiffM => children[0].clone(),
            Algo::ProjectM(items) | Algo::ProjectD(items) => {
                TOp::Project { items: items.clone() }.output_schema(children, &|_| None)?
            }
            Algo::MergeJoinM(_) | Algo::JoinD(_) | Algo::ProductD => {
                concat_schemas(children[0], children[1])
            }
            Algo::TMergeJoinM(eq) | Algo::TJoinD(eq) => tjoin_schema(eq, children[0], children[1])?,
            Algo::TAggrM { group_by, aggs } | Algo::TAggrD { group_by, aggs } => {
                taggr_schema(group_by, aggs, children[0])?
            }
            Algo::ScanD(_) => {
                return Err(tango_algebra::AlgebraError::Schema(
                    "ScanD schema must come from the catalog".into(),
                ))
            }
            Algo::MatScanM(name) => match children.first() {
                Some(c) => (*c).clone(),
                None => {
                    return Err(tango_algebra::AlgebraError::Schema(format!(
                        "MatScanM {name} schema must come from the materialized relation"
                    )))
                }
            },
        })
    }
}

/// A physical plan annotated with per-node output schemas — the form the
/// engine lowers into executable steps.
#[derive(Debug, Clone)]
pub struct PhysNode {
    /// The algorithm at this node.
    pub algo: Algo,
    /// The node's output schema.
    pub schema: Arc<Schema>,
    /// Input plans, in argument order.
    pub children: Vec<PhysNode>,
}

impl PhysNode {
    /// Render the plan like Figure 7/9 of the paper.
    pub fn render(&self) -> String {
        fn go(n: &PhysNode, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&n.algo.label());
            match &n.algo {
                Algo::FilterM(p) | Algo::FilterD(p) => {
                    out.push_str(&format!(" [{p}]"));
                }
                Algo::TAggrM { group_by, aggs } | Algo::TAggrD { group_by, aggs } => {
                    let a: Vec<String> = aggs.iter().map(ToString::to_string).collect();
                    out.push_str(&format!(" [group by {}; {}]", group_by.join(", "), a.join(", ")));
                }
                Algo::MergeJoinM(eq)
                | Algo::TMergeJoinM(eq)
                | Algo::JoinD(eq)
                | Algo::TJoinD(eq) => {
                    let c: Vec<String> = eq.iter().map(|(l, r)| format!("{l}={r}")).collect();
                    out.push_str(&format!(" [{}]", c.join(" AND ")));
                }
                _ => {}
            }
            out.push('\n');
            for c in &n.children {
                go(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }

    /// Number of nodes in this plan (pre-order size).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(PhysNode::node_count).sum::<usize>()
    }

    /// Does any node in this plan satisfy the predicate?
    pub fn any(&self, f: &dyn Fn(&Algo) -> bool) -> bool {
        f(&self.algo) || self.children.iter().any(|c| c.any(f))
    }
}
