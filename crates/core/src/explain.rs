//! `EXPLAIN [ANALYZE]` — rendering physical plans with estimates and,
//! after execution, the per-operator spans collected by `tango-trace`.
//!
//! The analyzed output pairs each plan node with the engine step that
//! executed it. The engine creates spans in a well-defined order
//! (post-order over the middleware-visible tree: a `TRANSFER^M`'s span
//! follows the `TRANSFER^D` loader spans inside its fragment; interior
//! DBMS nodes are folded into the generated SQL and get no span of their
//! own), and [`step_indices`] replays that order as a pure function of
//! the plan, so the renderer never guesses at the mapping.

use crate::engine::ExecReport;
use crate::phys::{Algo, PhysNode, Site};

/// The optimizer's per-node predictions, recorded while costing the
/// chosen plan. Indexed by the plan's pre-order node number.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeEstimate {
    /// Estimated output cardinality.
    pub est_rows: f64,
    /// Estimated cost of this node alone (excluding children), µs.
    pub est_cost_us: f64,
}

/// For each plan node (pre-order), the index of the engine step that
/// executed it — `None` for DBMS-interior nodes, which are evaluated by
/// the generated SQL of the enclosing `TRANSFER^M`.
///
/// Mirrors the span-creation order of `engine::execute` exactly.
pub fn step_indices(plan: &PhysNode) -> Vec<Option<usize>> {
    let mut out = vec![None; plan.node_count()];
    let mut next = 0usize;
    go_mid(plan, 0, &mut next, &mut out);
    out
}

fn go_mid(n: &PhysNode, pre: usize, next: &mut usize, out: &mut Vec<Option<usize>>) {
    if n.algo == Algo::TransferM {
        // the engine lowers the DBMS fragment (creating T^D loader
        // steps) before creating the TRANSFER^M step itself
        go_dbms(&n.children[0], pre + 1, next, out);
    } else {
        let mut cpre = pre + 1;
        for c in &n.children {
            go_mid(c, cpre, next, out);
            cpre += c.node_count();
        }
    }
    out[pre] = Some(*next);
    *next += 1;
}

fn go_dbms(n: &PhysNode, pre: usize, next: &mut usize, out: &mut Vec<Option<usize>>) {
    if n.algo == Algo::TransferD {
        go_mid(&n.children[0], pre + 1, next, out);
        out[pre] = Some(*next);
        *next += 1;
        return;
    }
    let mut cpre = pre + 1;
    for c in &n.children {
        go_dbms(c, cpre, next, out);
        cpre += c.node_count();
    }
    // interior DBMS node: evaluated inside the fragment's SQL, no step
}

/// Format a microsecond quantity for humans.
fn fmt_us(us: f64) -> String {
    if us >= 1000.0 {
        format!("{:.1}ms", us / 1000.0)
    } else {
        format!("{us:.0}µs")
    }
}

/// Format an estimated cardinality (estimates are fractional).
fn fmt_rows(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0}")
    } else {
        format!("{r:.1}")
    }
}

fn params_of(algo: &Algo) -> String {
    match algo {
        Algo::FilterM(p) | Algo::FilterD(p) => format!(" [{p}]"),
        Algo::TAggrM { group_by, aggs } | Algo::TAggrD { group_by, aggs } => {
            let a: Vec<String> = aggs.iter().map(ToString::to_string).collect();
            format!(" [group by {}; {}]", group_by.join(", "), a.join(", "))
        }
        Algo::MergeJoinM(eq) | Algo::TMergeJoinM(eq) | Algo::JoinD(eq) | Algo::TJoinD(eq) => {
            let c: Vec<String> = eq.iter().map(|(l, r)| format!("{l}={r}")).collect();
            format!(" [{}]", c.join(" AND "))
        }
        _ => String::new(),
    }
}

/// Render `EXPLAIN`: the plan tree with site placement and estimated
/// rows per node.
pub fn render_explain(plan: &PhysNode, estimates: &[NodeEstimate]) -> String {
    render(plan, estimates, None, false)
}

/// Render `EXPLAIN ANALYZE`: estimated vs. actual rows, site placement
/// and exclusive times from the execution report. With `redact_timings`
/// every time value prints as `?` so the output is reproducible (used by
/// golden tests).
pub fn render_explain_analyze(
    plan: &PhysNode,
    estimates: &[NodeEstimate],
    report: &ExecReport,
    redact_timings: bool,
) -> String {
    render(plan, estimates, Some(report), redact_timings)
}

fn render(
    plan: &PhysNode,
    estimates: &[NodeEstimate],
    report: Option<&ExecReport>,
    redact: bool,
) -> String {
    let steps = report.map(|_| step_indices(plan));
    let mut out = String::new();
    let mut pre = 0usize;
    render_node(plan, 0, &mut pre, estimates, report, steps.as_deref(), redact, &mut out);
    if let Some(r) = report {
        let (wall, wire, total) = if redact {
            ("?".to_string(), "?".to_string(), "?".to_string())
        } else {
            (
                fmt_us(r.wall.as_secs_f64() * 1e6),
                fmt_us(r.wire.as_secs_f64() * 1e6),
                fmt_us(r.total().as_secs_f64() * 1e6),
            )
        };
        out.push_str(&format!(
            "total: {} rows, wall {wall}, wire {wire}, wall+wire {total}\n",
            r.rows
        ));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn render_node(
    n: &PhysNode,
    depth: usize,
    pre: &mut usize,
    estimates: &[NodeEstimate],
    report: Option<&ExecReport>,
    steps: Option<&[Option<usize>]>,
    redact: bool,
    out: &mut String,
) {
    let my_pre = *pre;
    *pre += 1;
    out.push_str(&"  ".repeat(depth));
    out.push_str(&n.algo.label());
    out.push_str(&params_of(&n.algo));

    let site = match n.algo.site() {
        Site::Middleware => "middleware",
        Site::Dbms => "dbms",
    };
    let mut annots: Vec<String> = vec![site.to_string()];
    if let Some(e) = estimates.get(my_pre) {
        annots.push(format!("est rows {}", fmt_rows(e.est_rows)));
    }
    if let (Some(r), Some(map)) = (report, steps) {
        match map.get(my_pre).copied().flatten() {
            Some(si) if si < r.steps.len() => {
                let s = &r.steps[si];
                annots.push(format!("actual rows {}", s.out_rows));
                let excl = if redact { "?".into() } else { fmt_us(s.exclusive_us) };
                annots.push(format!("exclusive {excl}"));
                if s.server_us > 0.0 || matches!(s.algo, Algo::TransferM) {
                    let sv = if redact { "?".into() } else { fmt_us(s.server_us) };
                    annots.push(format!("server {sv}"));
                }
                for (k, v) in &s.annotations {
                    annots.push(format!("{k} {v}"));
                }
                for (k, v) in &s.counters {
                    // the estimated replan gain is a duration, so it is
                    // redacted along with the measured timings
                    if redact && *k == "replan_gain_est" {
                        annots.push(format!("{k} ?"));
                    } else {
                        annots.push(format!("{k} {v}"));
                    }
                }
                if !s.events.is_empty() {
                    // aggregate by kind, first-appearance order, so the
                    // annotation stays short under heavy fault schedules
                    let mut kinds: Vec<(&str, u64)> = Vec::new();
                    for e in &s.events {
                        match kinds.iter_mut().find(|(k, _)| *k == e.kind) {
                            Some((_, n)) => *n += 1,
                            None => kinds.push((&e.kind, 1)),
                        }
                    }
                    let shown: Vec<String> = kinds
                        .iter()
                        .map(
                            |(k, n)| {
                                if *n > 1 {
                                    format!("{k}\u{00d7}{n}")
                                } else {
                                    (*k).to_string()
                                }
                            },
                        )
                        .collect();
                    annots.push(format!("events: {}", shown.join(" ")));
                }
            }
            _ => annots.push("in SQL".to_string()),
        }
    }
    out.push_str(&format!("  ({})", annots.join(", ")));
    out.push('\n');
    for c in &n.children {
        render_node(c, depth + 1, pre, estimates, report, steps, redact, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tango_algebra::{Attr, Schema, SortSpec, Type};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::with_inferred_period(vec![
            Attr::new("K", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]))
    }

    fn node(algo: Algo, children: Vec<PhysNode>) -> PhysNode {
        PhysNode { algo, schema: schema(), children }
    }

    /// Pipeline FILTER^M ← TRANSFER^M ← SORT^D ← SCAN: SORT^D and the
    /// scan are folded into the SQL; steps are created bottom-up.
    #[test]
    fn step_indices_fold_dbms_interior_nodes() {
        let plan = node(
            Algo::FilterM(tango_algebra::Expr::lit(1)),
            vec![node(
                Algo::TransferM,
                vec![node(
                    Algo::SortD(SortSpec::by(["K"])),
                    vec![node(Algo::ScanD("T".into()), vec![])],
                )],
            )],
        );
        // pre-order: 0=FILTER^M 1=TRANSFER^M 2=SORT^D 3=SCAN
        let map = step_indices(&plan);
        assert_eq!(map, vec![Some(1), Some(0), None, None]);
    }

    /// The Figure 5 shape: TRANSFER^D inside a fragment creates its step
    /// (after its middleware input) before the enclosing TRANSFER^M.
    #[test]
    fn step_indices_transfer_d_round_trip() {
        let inner = node(Algo::TransferM, vec![node(Algo::ScanD("T".into()), vec![])]);
        let agg = node(Algo::TAggrM { group_by: vec!["K".into()], aggs: vec![] }, vec![inner]);
        let plan = node(
            Algo::TransferM,
            vec![node(
                Algo::TJoinD(vec![("K".into(), "K".into())]),
                vec![node(Algo::TransferD, vec![agg]), node(Algo::ScanD("T".into()), vec![])],
            )],
        );
        // pre-order: 0=T^M 1=TJOIN^D 2=T^D 3=TAGGR^M 4=T^M(inner) 5=SCAN 6=SCAN
        // engine order: inner T^M=0, TAGGR^M=1, T^D=2, outer T^M=3
        let map = step_indices(&plan);
        assert_eq!(map, vec![Some(3), None, Some(2), Some(1), Some(0), None, None]);
    }

    #[test]
    fn explain_renders_site_and_estimates() {
        let plan = node(Algo::TransferM, vec![node(Algo::ScanD("T".into()), vec![])]);
        let est = vec![
            NodeEstimate { est_rows: 42.0, est_cost_us: 10.0 },
            NodeEstimate { est_rows: 42.0, est_cost_us: 5.0 },
        ];
        let s = render_explain(&plan, &est);
        assert!(s.contains("TRANSFER^M  (middleware, est rows 42.0)"), "{s}");
        assert!(s.contains("(dbms, est rows 42.0)"), "{s}");
    }
}
