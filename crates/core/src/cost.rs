//! The cost model — Figure 6 of the paper plus the additional formulas
//! its technical report sketches for the remaining algorithms.
//!
//! Conventions from Section 3.1: formulas return **microseconds**;
//! conceptually each consists of an initialization cost (zero for all
//! algorithms), a per-argument term, and an output-formation term (zero
//! for sorting, selection and projection); DBMS-side selection and
//! projection are free (they fold into the generated SQL); the middleware
//! cannot know which algorithms the DBMS will pick, so DBMS formulas are
//! "generic". Every formula weighs `size(r)` (cardinality × average
//! tuple size) with a cost factor `p` determined by calibration
//! ([`crate::calibrate`]) and refined by runtime feedback
//! ([`crate::feedback`]).

use crate::phys::Algo;
use serde::{Deserialize, Serialize};
use tango_stats::RelationStats;

/// The calibratable cost factors (µs per byte unless noted).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostFactors {
    /// `TRANSFER^M`: per byte shipped DBMS → middleware.
    pub p_tm: f64,
    /// `TRANSFER^M` over a middleware-cached fragment: per byte served
    /// from the resident copy (no wire, no server — essentially a memory
    /// scan; see [`crate::cache`]). Kept strictly positive so a cached
    /// transfer still costs more than no transfer at all.
    pub p_cached: f64,
    /// `TRANSFER^D`: per byte shipped middleware → DBMS.
    pub p_td: f64,
    /// `TRANSFER^D`: fixed cost (CREATE TABLE + loader startup), µs.
    pub p_td_fixed: f64,
    /// `FILTER^M`: per byte per predicate term.
    pub p_sem: f64,
    /// `PROJECT^M`: per byte.
    pub p_pm: f64,
    /// `SORT^M`: per byte per log₂(cardinality).
    pub p_sm: f64,
    /// `SORT^D` (generic): per byte per log₂(cardinality).
    pub p_sd: f64,
    /// `TAGGR^M`: per argument byte.
    pub p_taggm1: f64,
    /// `TAGGR^M`: per result byte.
    pub p_taggm2: f64,
    /// `TAGGR^D`: per argument byte.
    pub p_taggd1: f64,
    /// `TAGGR^D`: per result byte.
    pub p_taggd2: f64,
    /// `MERGEJOIN^M`/`TMERGEJOIN^M`: per input byte.
    pub p_mjm: f64,
    /// `MERGEJOIN^M`/`TMERGEJOIN^M`: per output byte.
    pub p_mjout: f64,
    /// Generic DBMS join: per byte of input + output.
    pub p_jd: f64,
    /// Generic DBMS full table scan: per byte.
    pub p_scan: f64,
    /// Generic DBMS Cartesian product: per output byte.
    pub p_cart: f64,
    /// `DUPELIM^M`: per byte.
    pub p_dupm: f64,
    /// DBMS `SELECT DISTINCT`: per byte.
    pub p_dupd: f64,
    /// `COALESCE^M`: per byte.
    pub p_coal: f64,
    /// `TDIFF^M`: per byte.
    pub p_diff: f64,
    /// Cache refresh-by-delta: per byte of base + delta merged (the CPU
    /// side of [`crate::cache::refresh_cost_us`]; the delta's wire cost
    /// is charged at `p_tm`).
    pub p_delta: f64,
}

impl Default for CostFactors {
    /// Uncalibrated ballpark defaults (order-of-magnitude sane for an
    /// in-process engine talking over a LAN-profile wire). Calibration
    /// replaces the load-bearing ones — and because the calibration
    /// probes drain the real `tango-xxl` cursors, the fitted middleware
    /// factors automatically reflect the columnar batch loops (and any
    /// `workers` setting) of the session being calibrated; the defaults
    /// here stay fixed so uncalibrated plans are reproducible.
    fn default() -> Self {
        CostFactors {
            p_tm: 0.30,
            p_cached: 0.004,
            p_td: 0.35,
            p_td_fixed: 30_000.0,
            p_sem: 0.004,
            p_pm: 0.004,
            p_sm: 0.002,
            p_sd: 0.0015,
            p_taggm1: 0.01,
            p_taggm2: 0.005,
            p_taggd1: 0.15,
            p_taggd2: 0.15,
            p_mjm: 0.008,
            p_mjout: 0.004,
            p_jd: 0.012,
            p_scan: 0.002,
            p_cart: 0.012,
            p_dupm: 0.008,
            p_dupd: 0.010,
            p_coal: 0.008,
            p_diff: 0.010,
            p_delta: 0.008,
        }
    }
}

/// `size(r)` of the formulas.
fn size(s: &RelationStats) -> f64 {
    s.size_bytes().max(1.0)
}

fn log2_card(s: &RelationStats) -> f64 {
    s.rows.max(2.0).log2()
}

impl CostFactors {
    /// Cost (µs) of one algorithm instance given its input and output
    /// statistics. `inputs` are the algorithm's argument statistics in
    /// order; `output` the result statistics.
    pub fn cost(&self, algo: &Algo, inputs: &[&RelationStats], output: &RelationStats) -> f64 {
        match algo {
            // Figure 6 -------------------------------------------------
            Algo::TransferM => self.p_tm * size(inputs[0]),
            Algo::TransferD => self.p_td_fixed + self.p_td * size(inputs[0]),
            Algo::FilterM(pred) => self.p_sem * pred.complexity() as f64 * size(inputs[0]),
            Algo::TAggrM { .. } => {
                // cost(SORT^M(r)) is charged separately by the sort
                // enforcer on the argument; the formula's remaining terms:
                self.p_taggm1 * size(inputs[0]) + self.p_taggm2 * size(output)
            }
            Algo::TAggrD { .. } => self.p_taggd1 * size(inputs[0]) + self.p_taggd2 * size(output),
            // technical-report formulas ---------------------------------
            Algo::ProjectM(_) => self.p_pm * size(inputs[0]),
            Algo::SortM(_) => self.p_sm * size(inputs[0]) * log2_card(inputs[0]),
            Algo::SortXM(..) => {
                // in-memory comparisons plus one spill pass and one merge
                // pass over the whole input (runs are written and re-read)
                self.p_sm * size(inputs[0]) * log2_card(inputs[0])
                    + 2.0 * self.p_sm * size(inputs[0])
            }
            Algo::SortD(_) => self.p_sd * size(inputs[0]) * log2_card(inputs[0]),
            Algo::MergeJoinM(_) | Algo::TMergeJoinM(_) => {
                self.p_mjm * (size(inputs[0]) + size(inputs[1])) + self.p_mjout * size(output)
            }
            Algo::JoinD(_) | Algo::TJoinD(_) => {
                self.p_jd * (size(inputs[0]) + size(inputs[1]) + size(output))
            }
            Algo::ProductD => self.p_cart * size(output),
            Algo::ScanD(_) => self.p_scan * size(output),
            // serving an already-materialized intermediate is a memory
            // scan, like a cached TRANSFER^M
            Algo::MatScanM(_) => self.p_cached * size(output),
            // zero-cost in the DBMS per Section 3.1
            Algo::FilterD(_) | Algo::ProjectD(_) => 0.0,
            Algo::DupElimM => self.p_dupm * size(inputs[0]),
            Algo::DupElimD => self.p_dupd * size(inputs[0]),
            Algo::CoalesceM => self.p_coal * size(inputs[0]),
            Algo::TDiffM => self.p_diff * (size(inputs[0]) + size(inputs[1])),
        }
    }

    /// Given an observed runtime for an algorithm instance, back out the
    /// implied dominant cost factor (used by the feedback loop). Returns
    /// `None` for zero-cost or fixed-cost-dominated algorithms.
    pub fn implied_factor(
        &self,
        algo: &Algo,
        inputs: &[&RelationStats],
        output: &RelationStats,
        observed_us: f64,
    ) -> Option<(FactorId, f64)> {
        let x = match algo {
            Algo::TransferM => size(inputs[0]),
            Algo::TransferD => size(inputs[0]),
            Algo::FilterM(p) => p.complexity() as f64 * size(inputs[0]),
            Algo::SortM(_) | Algo::SortXM(..) => size(inputs[0]) * log2_card(inputs[0]),
            Algo::SortD(_) => size(inputs[0]) * log2_card(inputs[0]),
            Algo::TAggrM { .. } => size(inputs[0]),
            Algo::TAggrD { .. } => size(inputs[0]),
            Algo::MergeJoinM(_) | Algo::TMergeJoinM(_) => size(inputs[0]) + size(inputs[1]),
            Algo::JoinD(_) | Algo::TJoinD(_) => size(inputs[0]) + size(inputs[1]) + size(output),
            _ => return None,
        };
        if x <= 0.0 {
            return None;
        }
        let id = FactorId::for_algo(algo)?;
        let adjusted = match algo {
            // strip the fixed part before computing a per-byte rate
            Algo::TransferD => (observed_us - self.p_td_fixed).max(0.0),
            _ => observed_us,
        };
        Some((id, adjusted / x))
    }

    /// Read the factor addressed by `id`.
    pub fn get(&self, id: FactorId) -> f64 {
        match id {
            FactorId::Tm => self.p_tm,
            FactorId::Td => self.p_td,
            FactorId::Sem => self.p_sem,
            FactorId::Sm => self.p_sm,
            FactorId::Sd => self.p_sd,
            FactorId::TaggM => self.p_taggm1,
            FactorId::TaggD => self.p_taggd1,
            FactorId::Mjm => self.p_mjm,
            FactorId::Jd => self.p_jd,
        }
    }

    /// Overwrite the factor addressed by `id` (clamped positive).
    pub fn set(&mut self, id: FactorId, v: f64) {
        let v = v.max(1e-9);
        match id {
            FactorId::Tm => self.p_tm = v,
            FactorId::Td => self.p_td = v,
            FactorId::Sem => self.p_sem = v,
            FactorId::Sm => self.p_sm = v,
            FactorId::Sd => self.p_sd = v,
            FactorId::TaggM => self.p_taggm1 = v,
            FactorId::TaggD => self.p_taggd1 = v,
            FactorId::Mjm => self.p_mjm = v,
            FactorId::Jd => self.p_jd = v,
        }
    }
}

/// The calibratable/adaptable factors addressed by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactorId {
    /// `TRANSFER^M` per-byte rate.
    Tm,
    /// `TRANSFER^D` per-byte rate.
    Td,
    /// `FILTER^M` per-byte rate.
    Sem,
    /// `SORT^M` rate.
    Sm,
    /// `SORT^D` rate.
    Sd,
    /// `TAGGR^M` argument-side rate.
    TaggM,
    /// `TAGGR^D` argument-side rate.
    TaggD,
    /// `MERGEJOIN^M`/`TMERGEJOIN^M` input-side rate.
    Mjm,
    /// Generic DBMS join rate.
    Jd,
}

impl FactorId {
    /// The dominant factor of an algorithm, if it has one.
    pub fn for_algo(algo: &Algo) -> Option<FactorId> {
        Some(match algo {
            Algo::TransferM => FactorId::Tm,
            Algo::TransferD => FactorId::Td,
            Algo::FilterM(_) => FactorId::Sem,
            Algo::SortM(_) | Algo::SortXM(..) => FactorId::Sm,
            Algo::SortD(_) => FactorId::Sd,
            Algo::TAggrM { .. } => FactorId::TaggM,
            Algo::TAggrD { .. } => FactorId::TaggD,
            Algo::MergeJoinM(_) | Algo::TMergeJoinM(_) => FactorId::Mjm,
            Algo::JoinD(_) | Algo::TJoinD(_) => FactorId::Jd,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::Expr;

    fn stats(rows: f64, width: f64) -> RelationStats {
        RelationStats { rows, avg_tuple_bytes: width, ..Default::default() }
    }

    #[test]
    fn figure6_shapes() {
        let f = CostFactors::default();
        let small = stats(100.0, 40.0);
        let big = stats(100_000.0, 40.0);
        let out = stats(100.0, 24.0);
        // transfers scale linearly with size(r)
        let c1 = f.cost(&Algo::TransferM, &[&small], &small);
        let c2 = f.cost(&Algo::TransferM, &[&big], &big);
        assert!((c2 / c1 - 1000.0).abs() < 1.0);
        // DBMS selection/projection are free
        assert_eq!(f.cost(&Algo::FilterD(Expr::lit(1)), &[&big], &big), 0.0);
        assert_eq!(f.cost(&Algo::ProjectD(vec![]), &[&big], &big), 0.0);
        // FILTER^M scales with predicate complexity
        let p1 = Expr::eq(Expr::col("A"), Expr::lit(1));
        let p2 = Expr::and(p1.clone(), Expr::eq(Expr::col("B"), Expr::lit(2)));
        assert!(
            f.cost(&Algo::FilterM(p2), &[&big], &big) > f.cost(&Algo::FilterM(p1), &[&big], &big)
        );
        // TAGGR^D is far more expensive per byte than TAGGR^M
        let agg = |m: bool| {
            let a = if m {
                Algo::TAggrM { group_by: vec![], aggs: vec![] }
            } else {
                Algo::TAggrD { group_by: vec![], aggs: vec![] }
            };
            f.cost(&a, &[&big], &out)
        };
        assert!(agg(false) > 5.0 * agg(true));
    }

    #[test]
    fn implied_factor_round_trips() {
        let f = CostFactors::default();
        let input = stats(10_000.0, 50.0);
        let out = stats(10_000.0, 50.0);
        let cost = f.cost(&Algo::TransferM, &[&input], &out);
        let (id, p) = f.implied_factor(&Algo::TransferM, &[&input], &out, cost).unwrap();
        assert_eq!(id, FactorId::Tm);
        assert!((p - f.p_tm).abs() < 1e-12);
    }

    #[test]
    fn set_get() {
        let mut f = CostFactors::default();
        f.set(FactorId::Jd, 42.0);
        assert_eq!(f.get(FactorId::Jd), 42.0);
        f.set(FactorId::Jd, -1.0); // clamped to positive
        assert!(f.get(FactorId::Jd) > 0.0);
    }
}
