//! The adaptive loop: "The middleware uses performance feedback from the
//! DBMS to adapt its partitioning of subsequent queries" (abstract) —
//! implemented as the paper's future-work suggestion that "DBMS query
//! processing statistics, such as the running times of query parts, may
//! be used to update the cost factors used in the middleware's cost
//! formulas".
//!
//! After every execution, each instrumented algorithm's *observed*
//! exclusive runtime and *actual* input/output volumes imply a value for
//! its dominant cost factor; the session blends it into the current
//! factor with exponential smoothing.

use crate::cost::CostFactors;
use crate::engine::ExecReport;
use tango_stats::RelationStats;

/// Update `factors` in place from one execution report. `alpha` is the
/// smoothing weight of the new observation (0 = ignore, 1 = replace).
/// Returns the number of factors updated.
pub fn apply_feedback(factors: &mut CostFactors, report: &ExecReport, alpha: f64) -> usize {
    let alpha = alpha.clamp(0.0, 1.0);
    let mut updated = 0;
    let obs_stats = |rows: u64, bytes: u64| RelationStats {
        rows: rows as f64,
        avg_tuple_bytes: if rows > 0 { bytes as f64 / rows as f64 } else { 1.0 },
        ..Default::default()
    };
    for step in &report.steps {
        // very small observations are all noise
        if step.exclusive_us < 50.0 {
            continue;
        }
        // a cache hit never touched the wire, so its timing says nothing
        // about the transfer factor it would otherwise update
        if step.annotation("cache") == Some("hit") {
            continue;
        }
        // steps downstream of a mid-query re-plan splice ran over a
        // mixed old/new plan; their actuals would poison the
        // per-operator refit
        if step.annotation("replan") == Some("spliced") {
            continue;
        }
        // TRANSFER^M's exclusive time contains the DBMS's own execution
        // of the translated SQL; the transfer factor models only the
        // shipping, so subtract the server part.
        let observed_us = (step.exclusive_us - step.server_us).max(0.0);
        if observed_us < 50.0 {
            continue;
        }
        let out = obs_stats(step.out_rows, step.out_bytes);
        let ins: Vec<RelationStats> = if step.children.is_empty() {
            // transfers observe their own throughput
            vec![out.clone()]
        } else {
            step.children
                .iter()
                .map(|&c| obs_stats(report.steps[c].out_rows, report.steps[c].out_bytes))
                .collect()
        };
        let in_refs: Vec<&RelationStats> = ins.iter().collect();
        if let Some((id, implied)) = factors.implied_factor(&step.algo, &in_refs, &out, observed_us)
        {
            let old = factors.get(id);
            factors.set(id, (1.0 - alpha) * old + alpha * implied);
            updated += 1;
        }
    }
    updated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StepReport;
    use crate::phys::Algo;
    use std::time::Duration;

    fn report(excl_us: f64, rows: u64, bytes: u64) -> ExecReport {
        ExecReport {
            rows: rows as usize,
            wall: Duration::from_micros(excl_us as u64),
            wire: Duration::ZERO,
            steps: vec![StepReport {
                algo: Algo::TransferM,
                label: "TRANSFER^M".into(),
                inclusive_us: excl_us,
                exclusive_us: excl_us,
                out_rows: rows,
                out_bytes: bytes,
                server_us: 0.0,
                annotations: vec![],
                counters: vec![],
                events: vec![],
                children: vec![],
            }],
        }
    }

    #[test]
    fn converges_towards_observed_rate() {
        let mut f = CostFactors { p_tm: 1.0, ..Default::default() };
        // observed: 20_000 µs for 10_000 bytes => implied p_tm = 2.0
        for _ in 0..40 {
            apply_feedback(&mut f, &report(20_000.0, 100, 10_000), 0.3);
        }
        assert!((f.p_tm - 2.0).abs() < 0.01, "p_tm = {}", f.p_tm);
    }

    #[test]
    fn tiny_observations_ignored() {
        let mut f = CostFactors { p_tm: 1.0, ..Default::default() };
        let n = apply_feedback(&mut f, &report(10.0, 1, 10), 0.5);
        assert_eq!(n, 0);
        assert_eq!(f.p_tm, 1.0);
    }

    #[test]
    fn spliced_steps_are_skipped() {
        let mut f = CostFactors { p_tm: 1.0, ..Default::default() };
        let mut r = report(20_000.0, 100, 10_000);
        r.steps[0].annotations.push(("replan", "spliced".into()));
        let n = apply_feedback(&mut f, &r, 0.5);
        assert_eq!(n, 0, "spliced step must not refit factors");
        assert_eq!(f.p_tm, 1.0);
    }

    #[test]
    fn alpha_zero_is_inert() {
        let mut f = CostFactors { p_tm: 1.0, ..Default::default() };
        apply_feedback(&mut f, &report(20_000.0, 100, 10_000), 0.0);
        assert_eq!(f.p_tm, 1.0);
    }
}
