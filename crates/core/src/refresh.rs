//! Refresh-by-delta: bring a stale cached fragment forward by replaying
//! the DBMS's delta logs through the fragment's operators instead of
//! refetching the whole result.
//!
//! The supported shapes mirror the delta rules of `tango_xxl::delta`:
//!
//! * a **linear chain** (`SEL` / `PROJ` over one base `GET`) replays the
//!   table's tombstones through the same filter/project cursors;
//! * an **equi or temporal merge join** of two such chains, when exactly
//!   one side's table moved and the *other side's* subfragment is
//!   resident fresh in the cache, delta-joins the changed side's replay
//!   against the resident copy (`Δ(A ⋈ B) = ΔA ⋈ B`);
//! * a **temporal aggregate** over a chain re-fetches only the *touched
//!   groups* (the group keys appearing in the input delta) with a
//!   generated `WHERE` clause, and splices them over the cached base.
//!
//! Every path ends in [`DeltaApply`], which re-establishes the delivered
//! sort order and verifies the merge is order-determined — the refreshed
//! fragment is byte-identical to a cold refetch or the attempt bails.
//! Bails are cheap and safe: the engine falls back to the ordinary
//! streamed transfer (with populate), and a faulted refresh never
//! commits anything to the cache.

use crate::cache::{self, MidCache, StaleEntry};
use crate::phys::{Algo, PhysNode};
use crate::to_sql;
use std::collections::HashSet;
use std::sync::Arc;
use tango_algebra::logical::ProjItem;
use tango_algebra::{CmpOp, Expr, Schema, SortSpec, Tuple, Value};
use tango_minidb::{Connection, DeltaOp, DeltaRecord};
use tango_xxl::{delta_filter, delta_join, delta_project, DeltaApply, ZSet};

/// Touched-group refetch gives up past this many distinct group keys —
/// the generated `OR` chain would rival a full refetch.
const MAX_TOUCHED_GROUPS: usize = 64;

/// The result of one refresh attempt.
pub(crate) enum RefreshOutcome {
    /// The merged fragment, proven byte-identical to a cold refetch.
    Done {
        /// Refreshed fragment rows, in the delivered order.
        rows: Arc<Vec<Tuple>>,
        /// Post-replay `(table, version)` dependency snapshot.
        new_deps: Vec<(String, u64)>,
        /// Replay traffic: tombstone wire bytes plus any touched-group
        /// refetch bytes.
        delta_bytes: u64,
    },
    /// The attempt could not be proven identical; fall back to refetch.
    Bail(String),
}

/// One operator of a linear chain, applied bottom-up to a delta.
enum Step {
    Filter(Expr),
    Project(Vec<ProjItem>),
}

/// A linear `SEL`/`PROJ` chain over one base `GET`.
struct Chain<'a> {
    /// Operators in bottom-up application order.
    steps: Vec<Step>,
    /// The base table (uppercased, as `ScanD` carries it).
    table: String,
    /// The scan node: its schema is the layout delta tombstones arrive in.
    scan: &'a PhysNode,
}

/// A cacheable fragment shape with a known delta rule.
enum Shape<'a> {
    Chain(Chain<'a>),
    Join {
        temporal: bool,
        eq: &'a [(String, String)],
        left: Chain<'a>,
        right: Chain<'a>,
        /// The join children, for resident-other-side signature lookups.
        children: &'a [PhysNode],
    },
    Aggr {
        input: Chain<'a>,
        group_by: &'a [String],
        /// The `TAggrD` node itself (the touched-group refetch wraps it
        /// in a generated `WHERE`).
        node: &'a PhysNode,
    },
}

fn strip_sorts(mut node: &PhysNode) -> &PhysNode {
    while matches!(node.algo, Algo::SortD(_)) {
        node = &node.children[0];
    }
    node
}

fn linear_chain(node: &PhysNode) -> Option<Chain<'_>> {
    match &node.algo {
        Algo::ScanD(t) => Some(Chain { steps: Vec::new(), table: t.to_uppercase(), scan: node }),
        Algo::FilterD(p) => {
            let mut c = linear_chain(&node.children[0])?;
            c.steps.push(Step::Filter(p.clone()));
            Some(c)
        }
        Algo::ProjectD(items) => {
            let mut c = linear_chain(&node.children[0])?;
            c.steps.push(Step::Project(items.clone()));
            Some(c)
        }
        _ => None,
    }
}

fn shape(inner: &PhysNode) -> Option<Shape<'_>> {
    if let Some(c) = linear_chain(inner) {
        return Some(Shape::Chain(c));
    }
    match &inner.algo {
        Algo::JoinD(eq) | Algo::TJoinD(eq) => {
            let left = linear_chain(&inner.children[0])?;
            let right = linear_chain(&inner.children[1])?;
            // a self-join's delta is quadratic in the change — out of scope
            if left.table == right.table {
                return None;
            }
            Some(Shape::Join {
                temporal: matches!(inner.algo, Algo::TJoinD(_)),
                eq,
                left,
                right,
                children: &inner.children,
            })
        }
        Algo::TAggrD { group_by, .. } => {
            if group_by.is_empty() {
                // no group key: any write touches "the" group — that is
                // a full refetch by definition
                return None;
            }
            let input = linear_chain(&inner.children[0])?;
            Some(Shape::Aggr { input, group_by, node: inner })
        }
        _ => None,
    }
}

/// Whether `fragment` (a cleaned DBMS fragment, top sort included) has a
/// delta rule at all — the *support* input of
/// [`cache::maintenance_choice`]. Cheap and purely structural; the
/// dynamic preconditions (resident other side, touched-group cap,
/// order-determined merge) are checked by [`try_refresh`], which bails
/// to refetch when they fail.
pub(crate) fn supported(fragment: &PhysNode, order: &SortSpec) -> bool {
    !order.is_none() && shape(strip_sorts(fragment)).is_some()
}

fn zset_of_records(schema: Arc<Schema>, recs: &[DeltaRecord]) -> ZSet {
    let mut z = ZSet::new(schema);
    for r in recs {
        let w = match r.op {
            DeltaOp::Insert => 1,
            DeltaOp::Delete => -1,
        };
        z.add(r.row.clone(), w);
    }
    z
}

fn apply_chain(mut z: ZSet, steps: &[Step]) -> tango_xxl::Result<ZSet> {
    for s in steps {
        z = match s {
            Step::Filter(p) => delta_filter(&z, p)?,
            Step::Project(items) => delta_project(&z, items)?,
        };
    }
    Ok(z)
}

fn records_of<'a>(snap: &'a tango_minidb::DeltaSnapshot, table: &str) -> &'a [DeltaRecord] {
    snap.tables.iter().find(|(t, _)| t == table).map(|(_, r)| r.as_slice()).unwrap_or(&[])
}

/// Attempt to refresh one stale cached fragment in place. `fragment` is
/// the cleaned DBMS subtree of the `TRANSFER^M` (as keyed by
/// [`cache::fragment_key`]); `stale` the resident entry surfaced by
/// lookup. On [`RefreshOutcome::Done`] the caller commits the rows via
/// [`MidCache::refresh`] and serves them; on bail it falls back to the
/// ordinary streamed transfer. Nothing here writes to the cache.
pub(crate) fn try_refresh(
    conn: &Connection,
    cache: &MidCache,
    fragment: &PhysNode,
    stale: &StaleEntry,
) -> RefreshOutcome {
    let inner = strip_sorts(fragment);
    let Some(shape) = shape(inner) else {
        return RefreshOutcome::Bail("fragment shape has no delta rule".into());
    };
    // one locked read: every dep table's pending tombstones plus a
    // consistent all-table version vector
    let snap = match conn.fetch_deltas_multi(&stale.deps) {
        Ok(Some(s)) => s,
        Ok(None) => return RefreshOutcome::Bail("delta log no longer covers the snapshot".into()),
        Err(e) => return RefreshOutcome::Bail(format!("delta fetch failed: {e}")),
    };
    let mut delta_bytes = snap.byte_size();
    let new_deps: Option<Vec<(String, u64)>> =
        stale.deps.iter().map(|(t, _)| snap.version_of(t).map(|v| (t.clone(), v))).collect();
    let Some(new_deps) = new_deps else {
        return RefreshOutcome::Bail("dependency table vanished".into());
    };

    let delta = match &shape {
        Shape::Chain(chain) => {
            let z = zset_of_records(chain.scan.schema.clone(), records_of(&snap, &chain.table));
            match apply_chain(z, &chain.steps) {
                Ok(z) => z,
                Err(e) => return RefreshOutcome::Bail(format!("delta replay failed: {e}")),
            }
        }
        Shape::Join { temporal, eq, left, right, children } => {
            let moved = |c: &Chain| {
                stale.deps.iter().any(|(t, v)| *t == c.table && snap.version_of(t) != Some(*v))
            };
            let (changed, other, other_node, changed_left) = match (moved(left), moved(right)) {
                (true, false) => (left, right, &children[1], true),
                (false, true) => (right, left, &children[0], false),
                (true, true) => {
                    return RefreshOutcome::Bail("both join sides changed".into());
                }
                (false, false) => {
                    return RefreshOutcome::Bail("no dependency moved".into());
                }
            };
            let _ = other;
            // the unchanged side must be resident as its own fresh
            // fragment — that is what the delta joins against
            let is_temp = |t: &str| t.to_uppercase().starts_with("TANGO_TMP_");
            let Some(other_key) = cache::fragment_key(other_node, "", &is_temp) else {
                return RefreshOutcome::Bail("unchanged join side is uncacheable".into());
            };
            let Some((oschema, orows, odeps)) = cache.peek_by_signature(&other_key.signature)
            else {
                return RefreshOutcome::Bail("unchanged join side not resident".into());
            };
            if odeps.iter().any(|(t, v)| snap.version_of(t) != Some(*v)) {
                return RefreshOutcome::Bail("resident join side is itself stale".into());
            }
            if *oschema != *other_node.schema {
                return RefreshOutcome::Bail("resident join side schema mismatch".into());
            }
            let z = zset_of_records(changed.scan.schema.clone(), records_of(&snap, &changed.table));
            let dz = match apply_chain(z, &changed.steps) {
                Ok(z) => z,
                Err(e) => return RefreshOutcome::Bail(format!("delta replay failed: {e}")),
            };
            let full = ZSet::from_rows(oschema, orows.iter().cloned());
            let joined = if changed_left {
                delta_join(*temporal, &dz, &full, eq)
            } else {
                delta_join(*temporal, &full, &dz, eq)
            };
            match joined {
                Ok(z) => z,
                Err(e) => return RefreshOutcome::Bail(format!("delta join failed: {e}")),
            }
        }
        Shape::Aggr { input, group_by, node } => {
            match aggr_delta(conn, &snap, stale, input, group_by, node, &new_deps) {
                Ok((z, extra_bytes)) => {
                    delta_bytes += extra_bytes;
                    z
                }
                Err(reason) => return RefreshOutcome::Bail(reason),
            }
        }
    };

    match DeltaApply::try_new(stale.schema.clone(), &stale.rows, &delta, &stale.order) {
        Ok(Some(da)) => RefreshOutcome::Done { rows: da.rows().clone(), new_deps, delta_bytes },
        Ok(None) => RefreshOutcome::Bail("merge is not order-determined".into()),
        Err(e) => RefreshOutcome::Bail(format!("delta merge failed: {e}")),
    }
}

/// Touched-group re-aggregation: refetch only the groups whose input
/// changed, and splice them over the cached base (removed groups simply
/// yield no refetched rows). Returns the output-schema delta plus the
/// refetch wire bytes.
fn aggr_delta(
    conn: &Connection,
    snap: &tango_minidb::DeltaSnapshot,
    stale: &StaleEntry,
    input: &Chain<'_>,
    group_by: &[String],
    node: &PhysNode,
    new_deps: &[(String, u64)],
) -> std::result::Result<(ZSet, u64), String> {
    let z = zset_of_records(input.scan.schema.clone(), records_of(snap, &input.table));
    let din = apply_chain(z, &input.steps).map_err(|e| format!("delta replay failed: {e}"))?;
    let mut delta = ZSet::new(stale.schema.clone());
    if din.is_empty() {
        return Ok((delta, 0));
    }
    // group keys touched by the input delta, read off the aggregate's
    // input schema (the chain's output)
    let in_schema = &node.children[0].schema;
    let in_idx: Vec<usize> = group_by
        .iter()
        .map(|c| in_schema.index_of(c).map_err(|_| format!("group column {c} missing")))
        .collect::<std::result::Result<_, _>>()?;
    let mut touched: HashSet<Vec<Value>> = HashSet::new();
    for (row, _) in din.iter() {
        let key: Vec<Value> = in_idx.iter().map(|i| row.values()[*i].clone()).collect();
        if !key.iter().all(|v| matches!(v, Value::Int(_) | Value::Str(_))) {
            return Err("group key not renderable as a literal predicate".into());
        }
        touched.insert(key);
        if touched.len() > MAX_TOUCHED_GROUPS {
            return Err("too many touched groups".into());
        }
    }
    // refetch exactly those groups: WHERE (k = v AND ...) OR ...
    let pred = touched
        .iter()
        .map(|key| {
            group_by
                .iter()
                .zip(key)
                .map(|(c, v)| Expr::cmp(CmpOp::Eq, Expr::col(c.clone()), Expr::Lit(v.clone())))
                .reduce(Expr::and)
                .expect("group_by is non-empty")
        })
        .reduce(Expr::or)
        .expect("touched is non-empty");
    let refetch = PhysNode {
        algo: Algo::FilterD(pred),
        schema: node.schema.clone(),
        children: vec![node.clone()],
    };
    let sql = to_sql::render_select(&refetch).map_err(|e| format!("refetch render: {e}"))?;
    let mut cur = conn.query(&sql).map_err(|e| format!("touched-group refetch failed: {e}"))?;
    let mut fetched: Vec<Tuple> = Vec::new();
    let mut fetched_bytes = 0u64;
    loop {
        match cur.fetch_batch() {
            Ok(Some(batch)) => {
                fetched_bytes += batch.iter().map(|t| t.byte_size() as u64).sum::<u64>();
                fetched.extend(batch);
            }
            Ok(None) => break,
            Err(e) => return Err(format!("touched-group refetch failed: {e}")),
        }
    }
    // the refetch ran after the snapshot: if any dependency moved in
    // between, the spliced result would mix versions
    if new_deps.iter().any(|(t, v)| conn.table_version(t) != Some(*v)) {
        return Err("write raced the touched-group refetch".into());
    }
    let out_idx: Vec<usize> = group_by
        .iter()
        .map(|c| stale.schema.index_of(c).map_err(|_| format!("group column {c} missing")))
        .collect::<std::result::Result<_, _>>()?;
    for row in &*stale.rows {
        let key: Vec<Value> = out_idx.iter().map(|i| row.values()[*i].clone()).collect();
        if touched.contains(&key) {
            delta.add(row.clone(), -1);
        }
    }
    for row in fetched {
        delta.add(row, 1);
    }
    Ok((delta, fetched_bytes))
}
