//! # tango-core
//!
//! The TANGO temporal middleware (Temporal Adaptive Next-Generation
//! query Optimizer and processor) — the primary contribution of
//! Slivinskas, Jensen & Snodgrass, *"Adaptable Query Optimization and
//! Evaluation in Temporal Middleware"*, SIGMOD 2001.
//!
//! TANGO sits between client applications and a conventional DBMS
//! (`tango-minidb` here). It accepts temporal SQL, optimizes the query
//! with an extended Volcano optimizer that decides — operation by
//! operation, using statistics and calibrated cost formulas — whether to
//! evaluate in the middleware (with `tango-xxl` algorithms) or in the
//! DBMS (as generated SQL), and pipelines the mixed plan through its
//! execution engine. Transfer operators `T^M`/`T^D` move intermediate
//! results across the (simulated) wire in either direction.
//!
//! Component map (Figure 1 of the paper → modules):
//!
//! | Paper component       | Module        |
//! |-----------------------|---------------|
//! | Parser                | [`tsql`]      |
//! | (rewrite packs)       | [`rewrite`]   |
//! | Optimizer             | [`opt`] + [`rules`] (on the generic [`volcano`] crate) |
//! | Statistics Collector  | [`collector`] |
//! | Cost Estimator        | [`calibrate`] (+ [`feedback`] for the adaptive loop) |
//! | Translator-To-SQL     | [`to_sql`]    |
//! | Execution Engine      | [`engine`]    |
//! | (cost formulas, Fig 6)| [`cost`]      |
//! | (algorithms/sites)    | [`phys`]      |
//! | (relation cache)      | [`cache`]     |
//!
//! Start with [`session::Tango`].

#![warn(missing_docs)]

pub mod cache;
pub mod calibrate;
pub mod collector;
pub mod cost;
pub mod engine;
pub mod error;
pub mod explain;
pub mod feedback;
pub mod opt;
pub mod phys;
mod refresh;
pub mod rewrite;
pub mod rules;
pub mod session;
pub mod to_sql;
pub mod tsql;

pub use error::{Result, TangoError};
pub use session::{OptimizedQuery, Tango, TangoOptions};
