//! The public face of the middleware: a [`Tango`] session bound to one
//! underlying DBMS.
//!
//! ```
//! use tango_minidb::{Connection, Database, Link, LinkProfile};
//! use tango_core::Tango;
//!
//! // the "conventional DBMS" with a simulated JDBC wire
//! let db = Database::new(Link::new(LinkProfile::default()));
//! let conn = Connection::new(db.clone());
//! conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")?;
//! conn.execute("INSERT INTO POSITION VALUES (1,'Tom',2,20), (1,'Jane',5,25), (2,'Tom',5,10)")?;
//! conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS")?;
//!
//! // the middleware on top: temporal SQL in, optimized mixed plan out
//! let mut tango = Tango::connect(db);
//! let (result, report) = tango.query(
//!     "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
//!      GROUP BY PosID ORDER BY PosID",
//! )?;
//! assert_eq!(result.len(), 4); // Figure 3(c) of the paper
//! assert!(report.optimized.explain().contains("TAGGR"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cache::{MidCache, Residency, DEFAULT_CACHE_BUDGET, DEFAULT_CACHE_SHARDS};
use crate::calibrate::{self, Calibration};
use crate::collector;
use crate::cost::CostFactors;
use crate::engine::{self, ExecReport};
use crate::error::{Result, TangoError};
use crate::explain::{self, NodeEstimate};
use crate::feedback;
use crate::opt::{self, Catalog, OptOptions};
use crate::phys::PhysNode;
use crate::rewrite::{RewriteOutcome, Rewriter};
use crate::tsql;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tango_algebra::{Logical, Relation, Schema};
use tango_minidb::{Connection, Database};
use volcano::SearchStats;

/// Session-level configuration.
#[derive(Debug, Clone)]
pub struct TangoOptions {
    /// Optimizer knobs (rule groups, search limits).
    pub opt: OptOptions,
    /// Give the optimizer histograms on (time) attributes — the paper's
    /// Query 2 compares plan choice with and without them.
    pub use_histograms: bool,
    /// Adapt cost factors from observed runtimes after every query.
    pub feedback: bool,
    /// Smoothing weight of each new observation (0 = ignore, 1 = replace).
    pub feedback_alpha: f64,
    /// Byte budget of the middleware relation cache; `None` disables
    /// caching entirely (every `TRANSFER^M` streams from the DBMS and the
    /// optimizer sees an empty [`Residency`]).
    pub cache_budget: Option<u64>,
    /// Number of lock shards of the relation cache (see
    /// `docs/CONCURRENCY.md`). Only the session that *creates* a shared
    /// cache decides its shard count — later sessions attach to whatever
    /// exists. Default [`DEFAULT_CACHE_SHARDS`].
    pub cache_shards: usize,
    /// Whether the TinyLFU admission gate is active: under byte pressure
    /// a fragment must be accessed more frequently than the eviction
    /// victim (and cost more to refetch than the space it occupies) to
    /// be admitted. `false` restores admit-everything behavior, relying
    /// on GreedyDual-Size eviction alone. Default `true`.
    pub cache_admission: bool,
    /// Whether stale cache entries may be **refreshed by delta replay**
    /// instead of dropped on write. `true` (the default) keeps
    /// stale-but-covered entries resident and lets the engine pick the
    /// cheapest of refresh / refetch / drop per entry
    /// ([`crate::cache::maintenance_choice`]); `false` restores
    /// drop-on-write (every write invalidates dependent entries at the
    /// next lookup — the baseline the `cache_maintenance` bench
    /// compares against).
    pub cache_refresh: bool,
    /// Rows per batch pulled between operators, per session. `None` (the
    /// default) falls back to the deprecated process-wide
    /// [`tango_xxl::set_batch_rows`] knob.
    pub batch_rows: Option<usize>,
    /// Worker threads for the morsel-parallel middleware operators
    /// (sorts, joins, TAGGR). `1` (the default) runs everything
    /// sequentially — today's exact plans, traces and golden EXPLAIN
    /// ANALYZE output; `0` auto-sizes to the host's available
    /// parallelism.
    pub workers: usize,
    /// Rewrite rule packs applied between the parser and the optimizer,
    /// in order — names resolved under `rules/` or literal paths (see
    /// [`crate::rewrite`] and `docs/REWRITES.md`). Empty (the default)
    /// skips the rewrite stage entirely.
    pub rewrite_packs: Vec<String>,
}

impl Default for TangoOptions {
    fn default() -> Self {
        TangoOptions {
            opt: OptOptions::default(),
            use_histograms: true,
            feedback: false,
            feedback_alpha: 0.3,
            cache_budget: Some(DEFAULT_CACHE_BUDGET),
            cache_shards: DEFAULT_CACHE_SHARDS,
            cache_admission: true,
            cache_refresh: true,
            batch_rows: None,
            workers: 1,
            rewrite_packs: Vec::new(),
        }
    }
}

impl TangoOptions {
    /// Resolve the per-execution knobs: the session's `batch_rows`
    /// (falling back to the process-wide default) and the worker-pool
    /// width (`0` = the host's available parallelism).
    pub fn exec_opts(&self) -> tango_xxl::ExecOpts {
        tango_xxl::ExecOpts {
            batch_rows: self.batch_rows.unwrap_or_else(tango_xxl::batch_rows).max(1),
            workers: match self.workers {
                0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
                n => n,
            },
        }
    }
}

/// The outcome of optimizing one temporal-SQL statement.
pub struct OptimizedQuery {
    /// The initial (all-DBMS) logical plan.
    pub logical: Logical,
    /// The chosen physical plan.
    pub plan: PhysNode,
    /// Estimated cost in µs.
    pub est_cost_us: f64,
    /// Equivalence classes generated (Section 5.2 reports these).
    pub classes: usize,
    /// Class elements generated.
    pub elements: usize,
    /// Time spent optimizing.
    pub optimize_time: Duration,
    /// Per-rule firing counts from the transformation phase.
    pub rule_fires: Vec<(&'static str, usize)>,
    /// Search-effort accounting from the Volcano phase (optimize calls,
    /// implementations/enforcers considered, memo-table cache hits).
    pub search: SearchStats,
    /// Per-node cardinality/cost predictions for the chosen plan, in
    /// pre-order (used by `EXPLAIN [ANALYZE]`).
    pub node_estimates: Vec<NodeEstimate>,
    /// What the config-driven rewrite stage did before optimization
    /// (empty when no [`TangoOptions::rewrite_packs`] are active).
    pub rewrites: RewriteOutcome,
}

impl OptimizedQuery {
    /// Render the chosen plan like Figure 7/9 of the paper.
    pub fn explain(&self) -> String {
        self.plan.render()
    }

    /// Render `EXPLAIN`: the plan with site placement and estimated rows.
    pub fn explain_plan(&self) -> String {
        explain::render_explain(&self.plan, &self.node_estimates)
    }

    /// Render `EXPLAIN ANALYZE`: the plan annotated with the execution
    /// report's actual rows and exclusive times. `redact_timings`
    /// replaces time values with `?` for reproducible output.
    pub fn explain_analyze(&self, exec: &ExecReport, redact_timings: bool) -> String {
        explain::render_explain_analyze(&self.plan, &self.node_estimates, exec, redact_timings)
    }

    /// Render the optimizer-side trace: memo size, search effort and rule
    /// firings (the numbers Section 5.2 of the paper reports).
    pub fn optimizer_trace(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "optimizer: {} classes, {} class elements, {:.1}ms\n",
            self.classes,
            self.elements,
            self.optimize_time.as_secs_f64() * 1e3,
        ));
        s.push_str(&format!(
            "search: {} optimize calls, {} implementations, {} enforcers, {} cache hits\n",
            self.search.optimize_calls,
            self.search.implementations_considered,
            self.search.enforcers_considered,
            self.search.cache_hits,
        ));
        let fires: Vec<String> = self
            .rule_fires
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(r, n)| format!("{r}×{n}"))
            .collect();
        if !fires.is_empty() {
            s.push_str(&format!("rules fired: {}\n", fires.join(", ")));
        }
        if !self.rewrites.is_empty() {
            let fired: Vec<String> = self
                .rewrites
                .fires
                .iter()
                .map(|f| format!("{}/{}×{}", f.pack, f.rule, f.fires))
                .collect();
            s.push_str(&format!(
                "rewrite: {} ({} pass{}{})\n",
                if fired.is_empty() { "-".to_string() } else { fired.join(", ") },
                self.rewrites.passes,
                if self.rewrites.passes == 1 { "" } else { "es" },
                if self.rewrites.budget_hit { ", budget hit" } else { "" },
            ));
        }
        s
    }
}

/// Per-query report: optimization + execution.
pub struct QueryReport {
    /// The optimization outcome.
    pub optimized: OptimizedQuery,
    /// The execution report (per-operator spans).
    pub exec: ExecReport,
}

impl QueryReport {
    /// The time the experiments plot: optimization + compute + wire
    /// ("for query plans involving middleware algorithms, the middleware
    /// optimization time is included").
    pub fn total(&self) -> Duration {
        self.optimized.optimize_time + self.exec.total()
    }
}

/// A TANGO middleware session.
///
/// Sessions are cheap to construct and `Send`: the serving tier spawns
/// one per client thread against a shared [`Database`], and by default
/// they all attach to one shared, sharded relation cache held at
/// database scope (see `docs/CONCURRENCY.md`) — a fragment one session
/// paid to transfer is a warm hit for every other session.
pub struct Tango {
    conn: Connection,
    factors: CostFactors,
    options: TangoOptions,
    catalog: Option<Catalog>,
    cache: Arc<MidCache>,
    /// Loaded rewriter, cached per pack list (reloaded when
    /// [`TangoOptions::rewrite_packs`] changes).
    rewriter: Option<(Vec<String>, Rewriter)>,
}

impl Tango {
    /// Attach the middleware to a database, sharing the database-scoped
    /// relation cache with every other session connected this way.
    pub fn connect(db: Database) -> Tango {
        Tango::connect_with(db, TangoOptions::default())
    }

    /// [`Tango::connect`] with explicit options. The shared cache is
    /// created lazily by the first connecting session (its
    /// [`TangoOptions::cache_shards`] decides the shard layout; later
    /// sessions attach to whatever exists), while
    /// [`TangoOptions::cache_budget`] and
    /// [`TangoOptions::cache_admission`] are applied per query by
    /// whichever session runs.
    pub fn connect_with(db: Database, options: TangoOptions) -> Tango {
        let budget = options.cache_budget.unwrap_or(DEFAULT_CACHE_BUDGET);
        let shards = options.cache_shards;
        let cache = db.middleware_state(|| MidCache::with_shards(budget, shards));
        Tango::assemble(db, options, cache)
    }

    /// Attach with a **private** relation cache (the pre-serving-tier
    /// behavior): this session populates and serves alone, invisible to
    /// and unaffected by other sessions' residency. Used by the
    /// shared-vs-private comparison in `concurrency_bench` and anywhere
    /// isolation matters more than compounding warm hits.
    pub fn connect_private(db: Database) -> Tango {
        let options = TangoOptions::default();
        let cache = Arc::new(MidCache::with_shards(
            options.cache_budget.unwrap_or(DEFAULT_CACHE_BUDGET),
            options.cache_shards,
        ));
        Tango::assemble(db, options, cache)
    }

    fn assemble(db: Database, options: TangoOptions, cache: Arc<MidCache>) -> Tango {
        Tango {
            conn: Connection::new(db),
            factors: CostFactors::default(),
            options,
            catalog: None,
            cache,
            rewriter: None,
        }
    }

    /// The session's DBMS connection.
    pub fn conn(&self) -> &Connection {
        &self.conn
    }

    /// Mutable access to the session's DBMS connection — e.g. to change
    /// its [`tango_minidb::RetryPolicy`] before running chaos schedules.
    pub fn conn_mut(&mut self) -> &mut Connection {
        &mut self.conn
    }

    /// Current session options.
    pub fn options(&self) -> &TangoOptions {
        &self.options
    }

    /// Mutate session options (invalidates the statistics cache).
    pub fn options_mut(&mut self) -> &mut TangoOptions {
        // statistics with/without histograms differ: drop the cache
        self.catalog = None;
        &mut self.options
    }

    /// The cost factors currently steering the optimizer.
    pub fn factors(&self) -> &CostFactors {
        &self.factors
    }

    /// Replace the cost factors wholesale.
    pub fn set_factors(&mut self, f: CostFactors) {
        self.factors = f;
    }

    /// The middleware relation cache this session serves from
    /// (counters, residency, budget) — shared with every other
    /// [`Tango::connect`] session on the same database, private after
    /// [`Tango::connect_private`]. The cache object always exists;
    /// whether queries consult it is governed by
    /// [`TangoOptions::cache_budget`].
    pub fn cache(&self) -> &Arc<MidCache> {
        &self.cache
    }

    /// Drop every cached relation (statistics counters survive). On a
    /// shared cache this clears residency for *all* sessions.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// The serving report of this session's cache: totals plus one line
    /// per active shard (hits, misses, evictions, admission rejects,
    /// invalidations, refreshes), followed by the database's pending
    /// delta-log footprint. The same text [`Tango::explain_analyze`]
    /// appends to its rendering; the REPL prints it as `\cache`.
    pub fn cache_report(&self) -> String {
        let mut s = self.cache.render_report();
        s.push_str(&format!(
            "delta logs: {} bytes pending\n",
            self.conn.database().delta_log_bytes()
        ));
        s
    }

    /// The cache to hand to the engine this query, with the configured
    /// budget and admission toggle applied — or `None` when caching is
    /// disabled.
    fn active_cache(&self) -> Option<&Arc<MidCache>> {
        let budget = self.options.cache_budget?;
        if self.cache.budget() != budget {
            self.cache.set_budget(budget);
        }
        if self.cache.admission() != self.options.cache_admission {
            self.cache.set_admission(self.options.cache_admission);
        }
        if self.cache.refresh_enabled() != self.options.cache_refresh {
            self.cache.set_refresh(self.options.cache_refresh);
        }
        Some(&self.cache)
    }

    /// Snapshot of which fragment signatures the cache can serve right
    /// now — fresh entries at served size, stale-but-covered ones with
    /// their pending delta bytes (when [`TangoOptions::cache_refresh`]
    /// is on) — after dropping uncoverable entries. The optimizer's
    /// view of middleware residency.
    fn residency(&self) -> Residency {
        match self.active_cache() {
            Some(cache) => {
                let conn = &self.conn;
                if self.options.cache_refresh {
                    cache.residency(&|t| conn.table_version(t), &|t, since| {
                        conn.delta_bytes_since(t, since)
                    })
                } else {
                    cache.residency(&|t| conn.table_version(t), &|_, _| None)
                }
            }
            None => Residency::default(),
        }
    }

    /// Run the calibration experiment (Cost Estimator) and adopt the
    /// fitted factors.
    pub fn calibrate(&mut self) -> Result<Calibration> {
        let cal = calibrate::calibrate(&self.conn, 0xCAFE)?;
        self.factors = cal.factors;
        Ok(cal)
    }

    /// Refresh the Statistics Collector's catalog snapshot.
    pub fn refresh_statistics(&mut self) -> Result<()> {
        self.catalog = Some(collector::collect(&self.conn, self.options.use_histograms)?);
        Ok(())
    }

    fn catalog(&mut self) -> Result<&Catalog> {
        if self.catalog.is_none() {
            self.refresh_statistics()?;
        }
        Ok(self.catalog.as_ref().unwrap())
    }

    /// Parse temporal SQL into the initial (all-DBMS) logical plan.
    pub fn parse(&self, sql: &str) -> Result<Logical> {
        let conn = self.conn.clone();
        tsql::parse_tsql(sql, &move |t: &str| -> Option<Schema> { conn.table_schema(t) })
    }

    /// Parse, rewrite (when [`TangoOptions::rewrite_packs`] are active)
    /// and optimize a temporal-SQL statement.
    pub fn optimize(&mut self, sql: &str) -> Result<OptimizedQuery> {
        let logical = self.parse(sql)?;
        let (logical, rewrites) = self.apply_rewrites(logical)?;
        let mut optimized = self.optimize_logical(logical)?;
        optimized.rewrites = rewrites;
        Ok(optimized)
    }

    /// The loaded rewriter for the session's current pack list (packs
    /// are parsed and validated once, then cached until the list
    /// changes), or `None` when no packs are configured.
    pub fn rewriter(&mut self) -> Result<Option<&Rewriter>> {
        if self.options.rewrite_packs.is_empty() {
            return Ok(None);
        }
        let stale = match &self.rewriter {
            Some((packs, _)) => *packs != self.options.rewrite_packs,
            None => true,
        };
        if stale {
            let rw = Rewriter::load(&self.options.rewrite_packs)?;
            self.rewriter = Some((self.options.rewrite_packs.clone(), rw));
        }
        Ok(self.rewriter.as_ref().map(|(_, rw)| rw))
    }

    /// Run the config-driven rewrite stage over a logical plan (a no-op
    /// with an empty outcome when no packs are configured).
    pub fn apply_rewrites(&mut self, logical: Logical) -> Result<(Logical, RewriteOutcome)> {
        let conn = self.conn.clone();
        match self.rewriter()? {
            Some(rw) => {
                let src = move |t: &str| -> Option<Schema> { conn.table_schema(t) };
                Ok(rw.apply(logical, &tsql::SrcFn(&src)))
            }
            None => Ok((logical, RewriteOutcome::default())),
        }
    }

    /// Optimize an already-built logical plan.
    pub fn optimize_logical(&mut self, logical: Logical) -> Result<OptimizedQuery> {
        let options = self.options.opt;
        let factors = self.factors;
        let catalog = self.catalog()?.clone();
        let residency = self.residency();
        let t0 = Instant::now();
        let optimized =
            opt::optimize_resident(&logical, catalog.clone(), factors, options, residency)?;
        let optimize_time = t0.elapsed();
        let node_estimates =
            estimate_plan_nodes_with(&optimized.plan, &catalog, &factors, options.naive_overlaps)
                .unwrap_or_default();
        Ok(OptimizedQuery {
            logical,
            plan: optimized.plan,
            est_cost_us: optimized.cost,
            classes: optimized.classes,
            elements: optimized.elements,
            optimize_time,
            rule_fires: optimized.rule_fires,
            search: optimized.search,
            node_estimates,
            rewrites: RewriteOutcome::default(),
        })
    }

    /// `EXPLAIN`: optimize `sql` and render the chosen plan with site
    /// placement and estimated rows, without executing it.
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        Ok(self.optimize(sql)?.explain_plan())
    }

    /// `EXPLAIN ANALYZE`: optimize and execute `sql`, then render the
    /// plan annotated with estimated vs. actual rows, site placement and
    /// per-operator exclusive times, followed by the cache serving
    /// report (per-shard hit/miss/evict/admission-reject counters) when
    /// caching is enabled. Returns the rendering plus the full report
    /// (the result relation is discarded, as in PostgreSQL).
    pub fn explain_analyze(&mut self, sql: &str) -> Result<(String, QueryReport)> {
        let (_, report) = self.query(sql)?;
        let mut text = report.optimized.explain_analyze(&report.exec, false);
        if self.options.cache_budget.is_some() {
            if !text.ends_with('\n') {
                text.push('\n');
            }
            text.push_str(&self.cache.render_report());
        }
        Ok((text, report))
    }

    /// Parse, optimize, execute. Returns the result relation and a full
    /// report; applies cost-factor feedback if enabled.
    ///
    /// When `OptOptions::replan_ratio` is set (the default), execution is
    /// *adaptive*: pipeline breakers are staged one at a time, actual
    /// cardinalities are checked against the optimizer's estimates, and a
    /// misestimate past the threshold re-optimizes the unexecuted
    /// remainder mid-query (see `docs/ADAPTIVITY.md`). The reported plan
    /// is then the plan as actually executed, with each staged breaker
    /// under a `MATSCAN^M` node.
    pub fn query(&mut self, sql: &str) -> Result<(Relation, QueryReport)> {
        let mut optimized = self.optimize(sql)?;
        let (rel, exec) = match self.options.opt.replan_ratio {
            Some(ratio) => {
                let cfg = engine::AdaptiveOptions {
                    catalog: self.catalog()?.clone(),
                    factors: self.factors,
                    opt: self.options.opt,
                    residency: self.residency(),
                    ratio,
                    histogram_buckets: if self.options.use_histograms {
                        tango_minidb::catalog::HISTOGRAM_BUCKETS
                    } else {
                        0
                    },
                    exec: self.options.exec_opts(),
                };
                let run = engine::execute_adaptive(
                    &self.conn,
                    &optimized.plan,
                    self.active_cache(),
                    cfg,
                )?;
                // the executed plan differs from the optimized one (staged
                // breakers became MATSCAN^M nodes; a re-plan may have
                // spliced): adopt it so EXPLAIN ANALYZE shows what ran
                optimized.node_estimates = estimate_plan_nodes_with(
                    &run.plan,
                    &run.catalog,
                    &self.factors,
                    self.options.opt.naive_overlaps,
                )
                .unwrap_or_default();
                optimized.plan = run.plan;
                (run.rel, run.report)
            }
            None => engine::execute_cached_full(
                &self.conn,
                &optimized.plan,
                true,
                self.active_cache(),
                self.options.exec_opts(),
                self.factors,
            )?,
        };
        if self.options.feedback {
            feedback::apply_feedback(&mut self.factors, &exec, self.options.feedback_alpha);
        }
        let mut exec = exec;
        // surface pre-optimization rewrites on the plan root, so EXPLAIN
        // ANALYZE and the JSON trace carry them next to the execution
        // counters (packs off ⇒ nothing changes, golden outputs intact)
        if !optimized.rewrites.is_empty() {
            if let Some(root) = exec.steps.last_mut() {
                for f in &optimized.rewrites.fires {
                    root.events.push(tango_trace::SpanEvent {
                        kind: "rewrite".into(),
                        detail: format!("{}/{}×{}", f.pack, f.rule, f.fires),
                    });
                }
                root.counters.push(("rewrite_fires", optimized.rewrites.total_fires()));
                if optimized.rewrites.budget_hit {
                    root.counters.push(("rewrite_budget_hit", 1));
                }
            }
        }
        Ok((rel, QueryReport { optimized, exec }))
    }

    /// Execute a hand-built physical plan (the performance study runs
    /// the paper's fixed Plans 1..n this way).
    pub fn execute_physical(&mut self, plan: &PhysNode) -> Result<(Relation, ExecReport)> {
        let (rel, exec) = engine::execute_cached_full(
            &self.conn,
            plan,
            true,
            self.active_cache(),
            self.options.exec_opts(),
            self.factors,
        )?;
        if self.options.feedback {
            feedback::apply_feedback(&mut self.factors, &exec, self.options.feedback_alpha);
        }
        Ok((rel, exec))
    }

    /// Evaluate the estimated cost of a hand-built physical plan under the
    /// current factors and statistics (used by plan-choice experiments).
    pub fn estimate_physical(&mut self, plan: &PhysNode) -> Result<f64> {
        let catalog = self.catalog()?.clone();
        estimate_plan(plan, &catalog, &self.factors)
    }
}

/// Bottom-up cost estimate of a physical plan: derive statistics per node
/// (using the same machinery as the optimizer) and sum the formula costs.
fn estimate_plan(plan: &PhysNode, catalog: &Catalog, factors: &CostFactors) -> Result<f64> {
    estimate_plan_with(plan, catalog, factors, false)
}

/// [`estimate_plan`] with the optimizer's `naive_overlaps` mode threaded
/// through, so the engine's re-plan driver prices remainders exactly as
/// the (possibly deliberately naive) optimizer would.
pub(crate) fn estimate_plan_with(
    plan: &PhysNode,
    catalog: &Catalog,
    factors: &CostFactors,
    naive_overlaps: bool,
) -> Result<f64> {
    let mut out = vec![NodeEstimate::default(); plan.node_count()];
    go_estimate(plan, 0, catalog, factors, naive_overlaps, &mut out).map(|(_, c)| c)
}

/// Per-node predictions for the plan, indexed in pre-order (the numbering
/// `EXPLAIN` renders against).
pub(crate) fn estimate_plan_nodes_with(
    plan: &PhysNode,
    catalog: &Catalog,
    factors: &CostFactors,
    naive_overlaps: bool,
) -> Result<Vec<NodeEstimate>> {
    let mut out = vec![NodeEstimate::default(); plan.node_count()];
    go_estimate(plan, 0, catalog, factors, naive_overlaps, &mut out)?;
    Ok(out)
}

fn go_estimate(
    n: &PhysNode,
    pre: usize,
    catalog: &Catalog,
    factors: &CostFactors,
    naive_overlaps: bool,
    out: &mut [NodeEstimate],
) -> Result<(tango_stats::RelationStats, f64)> {
    use crate::phys::Algo;
    {
        let mut child_stats = Vec::new();
        let mut child_cost = 0.0;
        let mut cpre = pre + 1;
        for c in &n.children {
            let (s, cost) = go_estimate(c, cpre, catalog, factors, naive_overlaps, out)?;
            cpre += c.node_count();
            child_stats.push(s);
            child_cost += cost;
        }
        let stats = match &n.algo {
            // MATSCAN^M estimates come from the *observed* statistics the
            // re-plan driver registered under the materialization's name,
            // not from the consumed subtree kept for rendering.
            Algo::ScanD(t) | Algo::MatScanM(t) => catalog
                .get(&t.to_uppercase())
                .map(|(_, s)| s.clone())
                .ok_or_else(|| TangoError::Optimizer(format!("no statistics for {t}")))?,
            Algo::FilterM(p) | Algo::FilterD(p) => {
                let schema = &n.children[0].schema;
                tango_stats::cardinality::derive_select_with(
                    p,
                    &child_stats[0],
                    schema,
                    naive_overlaps,
                )
            }
            Algo::TAggrM { group_by, aggs } | Algo::TAggrD { group_by, aggs } => {
                let op = tango_algebra::Logical::TAggr {
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    input: Box::new(tango_algebra::Logical::Get { table: "_".into() }),
                };
                tango_stats::derive_stats_with(
                    &op,
                    &[&child_stats[0]],
                    &[n.children[0].schema.as_ref()],
                    &n.schema,
                    naive_overlaps,
                )
            }
            Algo::MergeJoinM(eq) | Algo::JoinD(eq) => {
                let op = tango_algebra::Logical::Join {
                    eq: eq.clone(),
                    left: Box::new(tango_algebra::Logical::Get { table: "_".into() }),
                    right: Box::new(tango_algebra::Logical::Get { table: "_".into() }),
                };
                tango_stats::derive_stats_with(
                    &op,
                    &[&child_stats[0], &child_stats[1]],
                    &[n.children[0].schema.as_ref(), n.children[1].schema.as_ref()],
                    &n.schema,
                    naive_overlaps,
                )
            }
            Algo::TMergeJoinM(eq) | Algo::TJoinD(eq) => {
                let op = tango_algebra::Logical::TJoin {
                    eq: eq.clone(),
                    left: Box::new(tango_algebra::Logical::Get { table: "_".into() }),
                    right: Box::new(tango_algebra::Logical::Get { table: "_".into() }),
                };
                tango_stats::derive_stats_with(
                    &op,
                    &[&child_stats[0], &child_stats[1]],
                    &[n.children[0].schema.as_ref(), n.children[1].schema.as_ref()],
                    &n.schema,
                    naive_overlaps,
                )
            }
            // size-preserving (transfers, sorts) and the rest: inherit
            _ => child_stats.first().cloned().unwrap_or_default(),
        };
        let in_refs: Vec<&tango_stats::RelationStats> = child_stats.iter().collect();
        let leaf_like = matches!(n.algo, Algo::ScanD(_) | Algo::MatScanM(_));
        let own = if in_refs.is_empty() && !leaf_like {
            0.0
        } else if leaf_like {
            factors.cost(&n.algo, &[&stats], &stats)
        } else {
            factors.cost(&n.algo, &in_refs, &stats)
        };
        out[pre] = NodeEstimate { est_rows: stats.rows, est_cost_us: own };
        Ok((stats, child_cost + own))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::{tup, Value};
    use tango_minidb::{Link, LinkProfile};

    fn setup() -> Tango {
        let db = Database::new(Link::new(LinkProfile::instant()));
        let conn = Connection::new(db.clone());
        conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        conn.execute("INSERT INTO POSITION VALUES (1,'Tom',2,20),(1,'Jane',5,25),(2,'Tom',5,10)")
            .unwrap();
        conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
        Tango::connect(db)
    }

    /// Query 1 of the paper on the Figure 3 data: the full middleware
    /// stack must reproduce Figure 3(c).
    #[test]
    fn query1_end_to_end_matches_figure3c() {
        let mut tango = setup();
        let (rel, report) = tango
            .query(
                "VALIDTIME SELECT PosID, COUNT(PosID) AS CNT FROM POSITION \
                 GROUP BY PosID ORDER BY PosID",
            )
            .unwrap();
        // layout (PosID, CNT, T1, T2); content is Figure 3(c)
        assert_eq!(
            rel.tuples(),
            &[tup![1, 1, 2, 5], tup![1, 2, 5, 20], tup![1, 1, 20, 25], tup![2, 1, 5, 10],]
        );
        assert_eq!(rel.schema().names().collect::<Vec<_>>(), vec!["PosID", "CNT", "T1", "T2"]);
        assert!(report.optimized.classes > 0);
        assert!(report.optimized.elements >= report.optimized.classes);
    }

    /// The Section 2.2 example: temporal aggregation joined back to
    /// POSITION must reproduce Figure 3(b).
    #[test]
    fn section22_example_matches_figure3b() {
        let mut tango = setup();
        let (rel, _) = tango
            .query(
                "VALIDTIME SELECT P.PosID, P.EmpName, A.CNT FROM \
                   (VALIDTIME SELECT PosID, COUNT(PosID) AS CNT FROM POSITION GROUP BY PosID) A, \
                   POSITION P \
                 WHERE A.PosID = P.PosID ORDER BY P.PosID",
            )
            .unwrap();
        // (PosID, EmpName, CNT, T1, T2), sorted by PosID
        assert_eq!(rel.len(), 5);
        let mut got = rel.clone();
        got.sort_by(&tango_algebra::SortSpec::by(["PosID", "EmpName", "T1"]));
        assert_eq!(
            got.tuples(),
            &[
                tup![1, "Jane", 2, 5, 20],
                tup![1, "Jane", 1, 20, 25],
                tup![1, "Tom", 1, 2, 5],
                tup![1, "Tom", 2, 5, 20],
                tup![2, "Tom", 1, 5, 10],
            ]
        );
        // delivered in PosID order as requested
        assert!(rel.is_sorted_by(&tango_algebra::SortSpec::by(["PosID"])));
    }

    #[test]
    fn chosen_plan_runs_taggr_in_middleware() {
        let mut tango = setup();
        // make the DBMS option expensive and the data big enough to matter:
        // defaults already price TAGGR^D far above TAGGR^M
        let q = tango
            .optimize(
                "VALIDTIME SELECT PosID, COUNT(PosID) AS CNT FROM POSITION \
                 GROUP BY PosID ORDER BY PosID",
            )
            .unwrap();
        let plan = q.explain();
        assert!(plan.contains("TAGGR^M"), "expected middleware aggregation:\n{plan}");
        assert!(plan.contains("TRANSFER^M"), "{plan}");
    }

    #[test]
    fn feedback_updates_factors() {
        let mut tango = setup();
        tango.options_mut().feedback = true;
        let before = tango.factors().p_tm;
        for _ in 0..3 {
            tango
                .query("VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID")
                .unwrap();
        }
        // tiny data: factors may or may not move, but the session must
        // stay consistent and positive
        assert!(tango.factors().p_tm > 0.0);
        let _ = before;
    }

    /// `VALIDTIME COALESCE`: the coalescing operator only exists in the
    /// middleware, so the optimizer must route the data there via
    /// enforcers regardless of cost factors.
    #[test]
    fn validtime_coalesce_end_to_end() {
        let mut tango = setup();
        let (rel, report) =
            tango.query("VALIDTIME COALESCE SELECT PosID FROM POSITION ORDER BY PosID").unwrap();
        assert!(report.optimized.explain().contains("COALESCE^M"));
        // position 1 is continuously staffed over [2, 25), position 2 over [5, 10)
        assert_eq!(rel.tuples(), &[tup![1, 2, 25], tup![2, 5, 10]]);
    }

    /// `VALIDTIME SELECT DISTINCT` eliminates duplicates in the
    /// middleware (order-preserving hash dedup).
    #[test]
    fn validtime_distinct_end_to_end() {
        let mut tango = setup();
        let (rel, _) = tango
            .query("VALIDTIME SELECT DISTINCT PosID, T1, T2 FROM POSITION ORDER BY PosID")
            .unwrap();
        assert_eq!(rel.len(), 3); // no duplicates in the sample; shape check
        let (all, _) =
            tango.query("VALIDTIME SELECT PosID, T1, T2 FROM POSITION ORDER BY PosID").unwrap();
        assert_eq!(all.len(), 3);
    }

    /// With a middleware sort-memory budget smaller than the estimated
    /// sort input, the order enforcer becomes the external merge sort —
    /// and the answer stays identical to the in-memory plan's.
    #[test]
    fn sort_budget_picks_external_sort() {
        let q1 = "VALIDTIME SELECT PosID, COUNT(PosID) AS CNT FROM POSITION \
                  GROUP BY PosID ORDER BY PosID";
        let mut tango = setup();
        let (baseline, _) = tango.query(q1).unwrap();

        let mut tango = setup();
        // price SORT^D out of the market so the ordering is enforced in
        // the middleware, then cap middleware sort memory below the
        // estimated input size
        tango.set_factors(CostFactors { p_sd: 1e6, ..Default::default() });
        tango.options_mut().opt.mid_sort_budget = Some(16);
        let q = tango.optimize(q1).unwrap();
        let plan = q.explain();
        assert!(plan.contains("XSORT^M"), "expected external sort enforcer:\n{plan}");
        assert!(!plan.contains("SORT^D"), "{plan}");
        let (rel, _) = tango.execute_physical(&q.plan).unwrap();
        assert_eq!(rel.tuples(), baseline.tuples());

        // an ample budget keeps the in-memory sort
        tango.options_mut().opt.mid_sort_budget = Some(1 << 20);
        let plan = tango.optimize(q1).unwrap().explain();
        assert!(plan.contains("SORT^M") && !plan.contains("XSORT^M"), "{plan}");
    }

    /// Sessions are `Send` (the serving tier spawns one per client
    /// thread), `connect` attaches every session on one database to one
    /// shared cache, and `connect_private` / a different database stay
    /// isolated.
    #[test]
    fn sessions_share_the_database_cache() {
        fn assert_send<T: Send>() {}
        assert_send::<Tango>();
        let db = Database::new(Link::new(LinkProfile::instant()));
        let a = Tango::connect(db.clone());
        let b = Tango::connect(db.clone());
        assert!(Arc::ptr_eq(a.cache(), b.cache()), "connect() must share one cache per database");
        let p = Tango::connect_private(db.clone());
        assert!(!Arc::ptr_eq(a.cache(), p.cache()), "connect_private() must be isolated");
        let c = Tango::connect(Database::new(Link::new(LinkProfile::instant())));
        assert!(!Arc::ptr_eq(a.cache(), c.cache()), "distinct databases must not share");
    }

    #[test]
    fn non_temporal_queries_work_too() {
        let mut tango = setup();
        let (rel, _) = tango
            .query("SELECT EmpName, PosID FROM POSITION WHERE PosID = 1 ORDER BY EmpName")
            .unwrap();
        assert_eq!(rel.tuples(), &[tup!["Jane", 1], tup!["Tom", 1]]);
        let _ = rel.schema().index_of("EmpName").unwrap();
        assert_eq!(rel.tuples()[0][1], Value::Int(1));
    }
}
