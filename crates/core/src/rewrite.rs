//! Config-driven query rewriting — the adaptable stage *before* the
//! Volcano optimizer ever runs.
//!
//! The paper's middleware adapts after optimization (cost-model
//! calibration, mid-query re-planning); this module adds the missing
//! front door: declarative pattern → replacement rules, loaded from
//! checked-in JSON rule packs (`rules/*.json`), applied to the logical
//! algebra tree between the tsql parser and the optimizer. Rules fix
//! queries the optimizer cannot — predicate spellings its estimator does
//! not recognize, cartesian products hiding equi-joins, a second SQL
//! surface that never mentions `VALIDTIME`.
//!
//! A pack mixes two rule kinds (see `docs/REWRITES.md` for the full
//! format reference):
//!
//! * **`expr` rules** — declarative expression patterns with binding
//!   variables (`"?a"` any expression, `"?c:col"` a column, `"?l:lit"` a
//!   literal, `"?op"` a comparison operator) and a replacement template
//!   that may transform bound operators (`["negate", "?op"]`,
//!   `["flip", "?op"]`). Matched bottom-up against every predicate and
//!   projection expression.
//! * **`pass` rules** — named plan-level transformations implemented in
//!   Rust and *selected and ordered* from the pack file:
//!   [`PlanPass::ProductToJoin`], [`PlanPass::MergeSelects`],
//!   [`PlanPass::SqlOverlapToTJoin`].
//!
//! Packs are applied to **fixpoint with a pass budget**: whole-tree
//! sweeps repeat until nothing changes or the budget is hit (looping
//! rule sets terminate and surface a `rewrite_budget_hit` counter
//! instead of hanging). Every firing is recorded and reported as
//! `rewrite` span events/counters in `EXPLAIN ANALYZE`, the optimizer
//! trace, and JSON traces.
//!
//! Enable packs per session via
//! [`TangoOptions::rewrite_packs`](crate::TangoOptions::rewrite_packs)
//! or `\rewrites` in the REPL.

use crate::error::{Result, TangoError};
use std::path::{Path, PathBuf};
use tango_algebra::logical::{concat_schemas, tjoin_schema};
use tango_algebra::{CmpOp, Expr, Logical, ProjItem, SchemaSource};

/// Default whole-tree sweep budget of [`Rewriter::apply`]; a pack file
/// may lower it with a `"budget"` key.
pub const DEFAULT_PASS_BUDGET: usize = 32;

/// One loaded rule pack: a named, ordered list of rules.
#[derive(Debug, Clone)]
pub struct RulePack {
    /// Pack name (the `"pack"` key; also the file stem under `rules/`).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Sweep budget this pack is content with (a [`Rewriter`] running
    /// several packs uses the smallest).
    pub budget: usize,
    /// Rules, in application order.
    pub rules: Vec<Rule>,
}

/// One rule of a pack.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name (reported in traces as `pack/rule`).
    pub name: String,
    /// What the rule does.
    pub kind: RuleKind,
}

/// The two rule kinds a pack may mix.
#[derive(Debug, Clone)]
pub enum RuleKind {
    /// Declarative expression rewrite: pattern → replacement template.
    Expr {
        /// Pattern matched against expression nodes.
        pattern: Pat,
        /// Template instantiated from the pattern's bindings.
        replace: Template,
    },
    /// A named plan-level pass (Rust-implemented, config-selected).
    Pass(PlanPass),
}

/// Named plan-level passes (the osm2streets-style `Transformation`
/// enum: Rust implementations, selected and ordered from config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanPass {
    /// `σ_p(A × B)` → `σ_rest(A ⋈_eq B)`: extract cross-input `Col = Col`
    /// conjuncts of a selection over a cartesian product into an
    /// equi-join (the output schema of `×` and `⋈` is the same
    /// concatenation, so the rewrite is layout-preserving).
    ProductToJoin,
    /// `σ_p(σ_q(X))` → `σ_{q ∧ p}(X)` — collapse adjacent selections.
    MergeSelects,
    /// Recognize the plain-SQL spelling of a temporal join — the exact
    /// shape `Translator-To-SQL` emits for `TJOIN^D` (Figure 5 of the
    /// paper: `GREATEST`/`LEAST` intersection items over a strict
    /// overlap `A.T1 < B.T2 AND B.T1 < A.T2`) — and map it back onto
    /// the algebra's `TJoin`, opening the temporal operators and
    /// estimators to queries that never said `VALIDTIME`.
    SqlOverlapToTJoin,
}

impl PlanPass {
    /// The config-file name of this pass.
    pub fn config_name(self) -> &'static str {
        match self {
            PlanPass::ProductToJoin => "product-to-join",
            PlanPass::MergeSelects => "merge-selects",
            PlanPass::SqlOverlapToTJoin => "sql-overlap-to-tjoin",
        }
    }

    fn from_config_name(s: &str) -> Option<PlanPass> {
        match s {
            "product-to-join" => Some(PlanPass::ProductToJoin),
            "merge-selects" => Some(PlanPass::MergeSelects),
            "sql-overlap-to-tjoin" => Some(PlanPass::SqlOverlapToTJoin),
            _ => None,
        }
    }

    const ALL: [PlanPass; 3] =
        [PlanPass::ProductToJoin, PlanPass::MergeSelects, PlanPass::SqlOverlapToTJoin];
}

/// What a binding variable may match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindKind {
    /// `"?x"` — any expression.
    Any,
    /// `"?x:col"` — a column reference.
    Col,
    /// `"?x:lit"` — a literal.
    Lit,
}

/// An expression pattern (the `"match"` side of an `expr` rule).
#[derive(Debug, Clone)]
pub enum Pat {
    /// A binding variable; a name repeated within one pattern must bind
    /// equal expressions.
    Bind(String, BindKind),
    /// `["cmp", op, l, r]` — a comparison with an exact or bound operator.
    Cmp(OpPat, Box<Pat>, Box<Pat>),
    /// `["and", l, r]`
    And(Box<Pat>, Box<Pat>),
    /// `["or", l, r]`
    Or(Box<Pat>, Box<Pat>),
    /// `["not", p]`
    Not(Box<Pat>),
}

/// Operator position of a [`Pat::Cmp`].
#[derive(Debug, Clone)]
pub enum OpPat {
    /// A literal operator, e.g. `"<="`.
    Exact(CmpOp),
    /// `"?op"` — bind whatever operator is there.
    Bind(String),
}

/// A replacement template (the `"replace"` side of an `expr` rule).
#[derive(Debug, Clone)]
pub enum Template {
    /// `"?x"` — substitute the bound expression.
    Var(String),
    /// `["cmp", op, l, r]`
    Cmp(OpTemplate, Box<Template>, Box<Template>),
    /// `["and", l, r]`
    And(Box<Template>, Box<Template>),
    /// `["or", l, r]`
    Or(Box<Template>, Box<Template>),
    /// `["not", t]`
    Not(Box<Template>),
}

/// Operator position of a [`Template::Cmp`].
#[derive(Debug, Clone)]
pub enum OpTemplate {
    /// A literal operator.
    Exact(CmpOp),
    /// `"?op"` — the bound operator, unchanged.
    Var(String),
    /// `["flip", "?op"]` — mirror the bound operator (`<` → `>`, `<=` →
    /// `>=`), for swapping comparison operands.
    Flip(String),
    /// `["negate", "?op"]` — the three-valued-logic negation (`<` → `>=`,
    /// `=` → `<>`): `NOT (a op b)` ≡ `a negate(op) b` because both sides
    /// are `UNKNOWN` exactly when a `NULL` is involved.
    Negate(String),
}

/// The 3VL-sound negation of a comparison operator: `NOT (a op b)` ≡
/// `a negate(op) b` (both are `UNKNOWN` on `NULL` operands).
pub fn negate_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
    }
}

/// One rule's aggregate firing count over a query.
#[derive(Debug, Clone)]
pub struct RuleFire {
    /// Pack name.
    pub pack: String,
    /// Rule name.
    pub rule: String,
    /// How many times it fired.
    pub fires: u64,
}

/// What [`Rewriter::apply`] did to one query.
#[derive(Debug, Clone, Default)]
pub struct RewriteOutcome {
    /// Per-rule firing counts (only rules that fired).
    pub fires: Vec<RuleFire>,
    /// Whole-tree sweeps taken.
    pub passes: usize,
    /// Whether the sweep budget stopped a still-changing rewrite (a
    /// looping rule set); surfaced as a `rewrite_budget_hit` counter.
    pub budget_hit: bool,
}

impl RewriteOutcome {
    /// Total rule firings.
    pub fn total_fires(&self) -> u64 {
        self.fires.iter().map(|f| f.fires).sum()
    }

    /// `true` when nothing fired and no budget was hit.
    pub fn is_empty(&self) -> bool {
        self.fires.is_empty() && !self.budget_hit
    }
}

/// A loaded, ordered set of rule packs, ready to rewrite plans.
#[derive(Debug, Clone)]
pub struct Rewriter {
    packs: Vec<RulePack>,
    budget: usize,
}

impl Rewriter {
    /// Load packs by name (resolved under `rules/`, see
    /// [`RulePack::load`]) or literal path, in the given order.
    pub fn load(names: &[String]) -> Result<Rewriter> {
        let mut packs = Vec::with_capacity(names.len());
        for n in names {
            packs.push(RulePack::load(n)?);
        }
        Ok(Rewriter::from_packs(packs))
    }

    /// Build a rewriter from already-parsed packs.
    pub fn from_packs(packs: Vec<RulePack>) -> Rewriter {
        let budget = packs.iter().map(|p| p.budget).min().unwrap_or(DEFAULT_PASS_BUDGET);
        Rewriter { packs, budget }
    }

    /// The loaded packs, in application order.
    pub fn packs(&self) -> &[RulePack] {
        &self.packs
    }

    /// Rewrite a logical plan to fixpoint (bounded by the pass budget).
    /// Returns the rewritten plan and the firing record; a plan no rule
    /// matches comes back unchanged with an empty outcome.
    pub fn apply(&self, mut plan: Logical, src: &dyn SchemaSource) -> (Logical, RewriteOutcome) {
        let mut counts: Vec<Vec<u64>> =
            self.packs.iter().map(|p| vec![0u64; p.rules.len()]).collect();
        let mut passes = 0;
        let mut budget_hit = false;
        loop {
            let mut sweep = Sweep { packs: &self.packs, counts: &mut counts, changed: false, src };
            plan = sweep.plan(plan);
            let changed = sweep.changed;
            passes += 1;
            if !changed {
                break;
            }
            if passes >= self.budget {
                budget_hit = true;
                break;
            }
        }
        let mut fires = Vec::new();
        for (p, pack) in self.packs.iter().enumerate() {
            for (r, rule) in pack.rules.iter().enumerate() {
                if counts[p][r] > 0 {
                    fires.push(RuleFire {
                        pack: pack.name.clone(),
                        rule: rule.name.clone(),
                        fires: counts[p][r],
                    });
                }
            }
        }
        (plan, RewriteOutcome { fires, passes, budget_hit })
    }
}

// ---------------------------------------------------------------------------
// Pack loading: path resolution, JSON parsing, schema validation.
// ---------------------------------------------------------------------------

fn err(msg: impl Into<String>) -> TangoError {
    TangoError::Rewrite(msg.into())
}

impl RulePack {
    /// Load a pack by name or path. A bare name `x` resolves to
    /// `rules/x.json` relative to the current directory, then relative
    /// to the repository root (so tests and the REPL agree); anything
    /// containing a path separator or `.json` is used verbatim.
    pub fn load(name: &str) -> Result<RulePack> {
        let mut candidates: Vec<PathBuf> = Vec::new();
        if name.contains('/') || name.contains('\\') || name.ends_with(".json") {
            candidates.push(PathBuf::from(name));
        } else {
            let file = format!("{name}.json");
            candidates.push(Path::new("rules").join(&file));
            candidates.push(
                Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("..")
                    .join("..")
                    .join("rules")
                    .join(file),
            );
        }
        for c in &candidates {
            if c.is_file() {
                let text =
                    std::fs::read_to_string(c).map_err(|e| err(format!("{}: {e}", c.display())))?;
                return RulePack::parse(&text, &c.display().to_string());
            }
        }
        let tried: Vec<String> = candidates.iter().map(|c| c.display().to_string()).collect();
        Err(err(format!("rule pack '{name}' not found (tried: {})", tried.join(", "))))
    }

    /// Parse a pack from JSON text; `origin` labels errors (a path or
    /// `"<inline>"`). The schema is validated strictly — unknown keys,
    /// missing fields, unbound template variables and unknown pass names
    /// are all rejected with the offending name in the message.
    pub fn parse(text: &str, origin: &str) -> Result<RulePack> {
        let json = json::parse(text).map_err(|e| err(format!("{origin}: {e}")))?;
        let obj = as_obj(&json, origin, "rule pack")?;
        let mut name = None;
        let mut description = None;
        let mut budget = DEFAULT_PASS_BUDGET;
        let mut rules = None;
        for (k, v) in obj {
            match k.as_str() {
                "pack" => name = Some(as_str(v, origin, "pack")?.to_string()),
                "description" => description = Some(as_str(v, origin, "description")?.to_string()),
                "budget" => {
                    let n = as_num(v, origin, "budget")?;
                    if !(1.0..=10_000.0).contains(&n) || n.fract() != 0.0 {
                        return Err(err(format!(
                            "{origin}: \"budget\" must be an integer in 1..=10000, got {n}"
                        )));
                    }
                    budget = n as usize;
                }
                "rules" => rules = Some(v),
                other => {
                    return Err(err(format!(
                        "{origin}: unknown rule-pack key \"{other}\" \
                         (expected \"pack\", \"description\", \"budget\", \"rules\")"
                    )))
                }
            }
        }
        let name = name.ok_or_else(|| err(format!("{origin}: missing \"pack\" name")))?;
        let description =
            description.ok_or_else(|| err(format!("{origin}: missing \"description\"")))?;
        let rules_json = match rules {
            Some(json::Json::Arr(items)) if !items.is_empty() => items,
            Some(json::Json::Arr(_)) => {
                return Err(err(format!("{origin}: \"rules\" must not be empty")))
            }
            Some(_) => return Err(err(format!("{origin}: \"rules\" must be an array"))),
            None => return Err(err(format!("{origin}: missing \"rules\" array"))),
        };
        let mut parsed = Vec::with_capacity(rules_json.len());
        for (i, r) in rules_json.iter().enumerate() {
            parsed.push(parse_rule(r, origin, i)?);
        }
        Ok(RulePack { name, description, budget, rules: parsed })
    }

    /// Canonical rendering of this pack — fixed key order, two-space
    /// indent, patterns inline. Checked-in pack files must be byte-equal
    /// to this (the `rule_pack_files_are_canonical` lint test), giving
    /// rule packs the same "one true formatting" discipline `cargo fmt`
    /// gives code.
    pub fn canonical_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"pack\": {},\n", json::quote(&self.name)));
        s.push_str(&format!("  \"description\": {},\n", json::quote(&self.description)));
        if self.budget != DEFAULT_PASS_BUDGET {
            s.push_str(&format!("  \"budget\": {},\n", self.budget));
        }
        s.push_str("  \"rules\": [\n");
        for (i, r) in self.rules.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": {},\n", json::quote(&r.name)));
            match &r.kind {
                RuleKind::Expr { pattern, replace } => {
                    s.push_str("      \"kind\": \"expr\",\n");
                    s.push_str(&format!("      \"match\": {},\n", render_pat(pattern)));
                    s.push_str(&format!("      \"replace\": {}\n", render_template(replace)));
                }
                RuleKind::Pass(p) => {
                    s.push_str("      \"kind\": \"pass\",\n");
                    s.push_str(&format!("      \"pass\": {}\n", json::quote(p.config_name())));
                }
            }
            s.push_str(if i + 1 == self.rules.len() { "    }\n" } else { "    },\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn parse_rule(j: &json::Json, origin: &str, idx: usize) -> Result<Rule> {
    let obj = as_obj(j, origin, &format!("rules[{idx}]"))?;
    let mut name = None;
    let mut kind = None;
    let mut pattern = None;
    let mut replace = None;
    let mut pass = None;
    for (k, v) in obj {
        match k.as_str() {
            "name" => name = Some(as_str(v, origin, "name")?.to_string()),
            "kind" => kind = Some(as_str(v, origin, "kind")?.to_string()),
            "match" => pattern = Some(v),
            "replace" => replace = Some(v),
            "pass" => pass = Some(as_str(v, origin, "pass")?.to_string()),
            other => {
                return Err(err(format!(
                    "{origin}: rules[{idx}]: unknown key \"{other}\" \
                     (expected \"name\", \"kind\", \"match\", \"replace\", \"pass\")"
                )))
            }
        }
    }
    let name = name.ok_or_else(|| err(format!("{origin}: rules[{idx}]: missing \"name\"")))?;
    let kind = kind.ok_or_else(|| err(format!("{origin}: rule '{name}': missing \"kind\"")))?;
    let where_ = format!("{origin}: rule '{name}'");
    match kind.as_str() {
        "expr" => {
            let p = pattern.ok_or_else(|| err(format!("{where_}: missing \"match\"")))?;
            let r = replace.ok_or_else(|| err(format!("{where_}: missing \"replace\"")))?;
            if pass.is_some() {
                return Err(err(format!("{where_}: \"pass\" is only valid for kind \"pass\"")));
            }
            let pattern = parse_pat(p, &where_)?;
            let replace = parse_template(r, &where_)?;
            let mut bound = Vec::new();
            pattern_binders(&pattern, &mut bound);
            check_template_bound(&replace, &bound, &where_)?;
            Ok(Rule { name, kind: RuleKind::Expr { pattern, replace } })
        }
        "pass" => {
            if pattern.is_some() || replace.is_some() {
                return Err(err(format!(
                    "{where_}: \"match\"/\"replace\" are only valid for kind \"expr\""
                )));
            }
            let p = pass.ok_or_else(|| err(format!("{where_}: missing \"pass\"")))?;
            let pass = PlanPass::from_config_name(&p).ok_or_else(|| {
                let known: Vec<&str> = PlanPass::ALL.iter().map(|p| p.config_name()).collect();
                err(format!("{where_}: unknown pass \"{p}\" (known passes: {})", known.join(", ")))
            })?;
            Ok(Rule { name, kind: RuleKind::Pass(pass) })
        }
        other => {
            Err(err(format!("{where_}: unknown kind \"{other}\" (expected \"expr\" or \"pass\")")))
        }
    }
}

fn as_obj<'a>(j: &'a json::Json, origin: &str, what: &str) -> Result<&'a [(String, json::Json)]> {
    match j {
        json::Json::Obj(kv) => Ok(kv),
        _ => Err(err(format!("{origin}: {what} must be a JSON object"))),
    }
}

fn as_str<'a>(j: &'a json::Json, origin: &str, what: &str) -> Result<&'a str> {
    match j {
        json::Json::Str(s) => Ok(s),
        _ => Err(err(format!("{origin}: \"{what}\" must be a string"))),
    }
}

fn as_num(j: &json::Json, origin: &str, what: &str) -> Result<f64> {
    match j {
        json::Json::Num(n) => Ok(*n),
        _ => Err(err(format!("{origin}: \"{what}\" must be a number"))),
    }
}

fn parse_binder(s: &str, where_: &str) -> Result<(String, BindKind)> {
    let body = &s[1..];
    let (name, kind) = match body.split_once(':') {
        None => (body, BindKind::Any),
        Some((n, "col")) => (n, BindKind::Col),
        Some((n, "lit")) => (n, BindKind::Lit),
        Some((_, k)) => {
            return Err(err(format!(
                "{where_}: unknown binder kind \"{k}\" in \"{s}\" (expected \"col\" or \"lit\")"
            )))
        }
    };
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(err(format!("{where_}: bad binder name in \"{s}\"")));
    }
    Ok((name.to_string(), kind))
}

fn parse_cmp_op(s: &str) -> Option<CmpOp> {
    match s {
        "=" => Some(CmpOp::Eq),
        "<>" => Some(CmpOp::Ne),
        "<" => Some(CmpOp::Lt),
        "<=" => Some(CmpOp::Le),
        ">" => Some(CmpOp::Gt),
        ">=" => Some(CmpOp::Ge),
        _ => None,
    }
}

fn parse_pat(j: &json::Json, where_: &str) -> Result<Pat> {
    match j {
        json::Json::Str(s) if s.starts_with('?') => {
            let (name, kind) = parse_binder(s, where_)?;
            Ok(Pat::Bind(name, kind))
        }
        json::Json::Str(s) => Err(err(format!(
            "{where_}: pattern atom \"{s}\" is not a binder (binders start with '?')"
        ))),
        json::Json::Arr(items) => {
            let head = match items.first() {
                Some(json::Json::Str(s)) => s.as_str(),
                _ => {
                    return Err(err(format!("{where_}: pattern list must start with a form name")))
                }
            };
            let arity = |n: usize| -> Result<()> {
                if items.len() == n + 1 {
                    Ok(())
                } else {
                    Err(err(format!(
                        "{where_}: \"{head}\" takes {n} argument(s), got {}",
                        items.len() - 1
                    )))
                }
            };
            match head {
                "not" => {
                    arity(1)?;
                    Ok(Pat::Not(Box::new(parse_pat(&items[1], where_)?)))
                }
                "and" | "or" => {
                    arity(2)?;
                    let l = Box::new(parse_pat(&items[1], where_)?);
                    let r = Box::new(parse_pat(&items[2], where_)?);
                    Ok(if head == "and" { Pat::And(l, r) } else { Pat::Or(l, r) })
                }
                "cmp" => {
                    arity(3)?;
                    let op = match &items[1] {
                        json::Json::Str(s) if s.starts_with('?') => {
                            let (name, kind) = parse_binder(s, where_)?;
                            if kind != BindKind::Any {
                                return Err(err(format!(
                                    "{where_}: operator binder \"{s}\" must be untyped"
                                )));
                            }
                            OpPat::Bind(name)
                        }
                        json::Json::Str(s) => OpPat::Exact(parse_cmp_op(s).ok_or_else(|| {
                            err(format!("{where_}: unknown comparison operator \"{s}\""))
                        })?),
                        _ => {
                            return Err(err(format!(
                                "{where_}: \"cmp\" operator must be a string or \"?op\" binder"
                            )))
                        }
                    };
                    let l = Box::new(parse_pat(&items[2], where_)?);
                    let r = Box::new(parse_pat(&items[3], where_)?);
                    Ok(Pat::Cmp(op, l, r))
                }
                other => Err(err(format!(
                    "{where_}: unknown pattern form \"{other}\" \
                     (expected \"cmp\", \"and\", \"or\", \"not\")"
                ))),
            }
        }
        _ => Err(err(format!("{where_}: pattern must be a binder string or a list"))),
    }
}

fn parse_template(j: &json::Json, where_: &str) -> Result<Template> {
    match j {
        json::Json::Str(s) if s.starts_with('?') => {
            let (name, kind) = parse_binder(s, where_)?;
            if kind != BindKind::Any {
                return Err(err(format!(
                    "{where_}: template variable \"{s}\" must be untyped (types live on the pattern)"
                )));
            }
            Ok(Template::Var(name))
        }
        json::Json::Arr(items) => {
            let head = match items.first() {
                Some(json::Json::Str(s)) => s.as_str(),
                _ => {
                    return Err(err(format!("{where_}: template list must start with a form name")))
                }
            };
            let arity = |n: usize| -> Result<()> {
                if items.len() == n + 1 {
                    Ok(())
                } else {
                    Err(err(format!(
                        "{where_}: \"{head}\" takes {n} argument(s), got {}",
                        items.len() - 1
                    )))
                }
            };
            match head {
                "not" => {
                    arity(1)?;
                    Ok(Template::Not(Box::new(parse_template(&items[1], where_)?)))
                }
                "and" | "or" => {
                    arity(2)?;
                    let l = Box::new(parse_template(&items[1], where_)?);
                    let r = Box::new(parse_template(&items[2], where_)?);
                    Ok(if head == "and" { Template::And(l, r) } else { Template::Or(l, r) })
                }
                "cmp" => {
                    arity(3)?;
                    let op = parse_op_template(&items[1], where_)?;
                    let l = Box::new(parse_template(&items[2], where_)?);
                    let r = Box::new(parse_template(&items[3], where_)?);
                    Ok(Template::Cmp(op, l, r))
                }
                other => Err(err(format!(
                    "{where_}: unknown template form \"{other}\" \
                     (expected \"cmp\", \"and\", \"or\", \"not\")"
                ))),
            }
        }
        _ => Err(err(format!("{where_}: template must be a \"?var\" string or a list"))),
    }
}

fn parse_op_template(j: &json::Json, where_: &str) -> Result<OpTemplate> {
    match j {
        json::Json::Str(s) if s.starts_with('?') => Ok(OpTemplate::Var(parse_binder(s, where_)?.0)),
        json::Json::Str(s) => Ok(OpTemplate::Exact(
            parse_cmp_op(s)
                .ok_or_else(|| err(format!("{where_}: unknown comparison operator \"{s}\"")))?,
        )),
        json::Json::Arr(items) => {
            let (f, v) = match items.as_slice() {
                [json::Json::Str(f), json::Json::Str(v)] if v.starts_with('?') => {
                    (f.as_str(), v.as_str())
                }
                _ => {
                    return Err(err(format!(
                        "{where_}: operator function must be [\"flip\"|\"negate\", \"?op\"]"
                    )))
                }
            };
            let name = parse_binder(v, where_)?.0;
            match f {
                "flip" => Ok(OpTemplate::Flip(name)),
                "negate" => Ok(OpTemplate::Negate(name)),
                other => Err(err(format!(
                    "{where_}: unknown operator function \"{other}\" \
                     (expected \"flip\" or \"negate\")"
                ))),
            }
        }
        _ => Err(err(format!("{where_}: bad operator position in template"))),
    }
}

fn pattern_binders(p: &Pat, out: &mut Vec<String>) {
    match p {
        Pat::Bind(n, _) => out.push(n.clone()),
        Pat::Cmp(op, l, r) => {
            if let OpPat::Bind(n) = op {
                out.push(n.clone());
            }
            pattern_binders(l, out);
            pattern_binders(r, out);
        }
        Pat::And(l, r) | Pat::Or(l, r) => {
            pattern_binders(l, out);
            pattern_binders(r, out);
        }
        Pat::Not(i) => pattern_binders(i, out),
    }
}

fn check_template_bound(t: &Template, bound: &[String], where_: &str) -> Result<()> {
    let check = |n: &str| -> Result<()> {
        if bound.iter().any(|b| b == n) {
            Ok(())
        } else {
            Err(err(format!("{where_}: template variable \"?{n}\" is not bound by the pattern")))
        }
    };
    match t {
        Template::Var(n) => check(n),
        Template::Cmp(op, l, r) => {
            match op {
                OpTemplate::Var(n) | OpTemplate::Flip(n) | OpTemplate::Negate(n) => check(n)?,
                OpTemplate::Exact(_) => {}
            }
            check_template_bound(l, bound, where_)?;
            check_template_bound(r, bound, where_)
        }
        Template::And(l, r) | Template::Or(l, r) => {
            check_template_bound(l, bound, where_)?;
            check_template_bound(r, bound, where_)
        }
        Template::Not(i) => check_template_bound(i, bound, where_),
    }
}

fn render_pat(p: &Pat) -> String {
    match p {
        Pat::Bind(n, BindKind::Any) => json::quote(&format!("?{n}")),
        Pat::Bind(n, BindKind::Col) => json::quote(&format!("?{n}:col")),
        Pat::Bind(n, BindKind::Lit) => json::quote(&format!("?{n}:lit")),
        Pat::Cmp(op, l, r) => {
            let op = match op {
                OpPat::Exact(o) => json::quote(o.sql()),
                OpPat::Bind(n) => json::quote(&format!("?{n}")),
            };
            format!("[\"cmp\", {op}, {}, {}]", render_pat(l), render_pat(r))
        }
        Pat::And(l, r) => format!("[\"and\", {}, {}]", render_pat(l), render_pat(r)),
        Pat::Or(l, r) => format!("[\"or\", {}, {}]", render_pat(l), render_pat(r)),
        Pat::Not(i) => format!("[\"not\", {}]", render_pat(i)),
    }
}

fn render_template(t: &Template) -> String {
    match t {
        Template::Var(n) => json::quote(&format!("?{n}")),
        Template::Cmp(op, l, r) => {
            let op = match op {
                OpTemplate::Exact(o) => json::quote(o.sql()),
                OpTemplate::Var(n) => json::quote(&format!("?{n}")),
                OpTemplate::Flip(n) => format!("[\"flip\", {}]", json::quote(&format!("?{n}"))),
                OpTemplate::Negate(n) => format!("[\"negate\", {}]", json::quote(&format!("?{n}"))),
            };
            format!("[\"cmp\", {op}, {}, {}]", render_template(l), render_template(r))
        }
        Template::And(l, r) => format!("[\"and\", {}, {}]", render_template(l), render_template(r)),
        Template::Or(l, r) => format!("[\"or\", {}, {}]", render_template(l), render_template(r)),
        Template::Not(i) => format!("[\"not\", {}]", render_template(i)),
    }
}

// ---------------------------------------------------------------------------
// Matching and application.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Binds {
    exprs: Vec<(String, Expr)>,
    ops: Vec<(String, CmpOp)>,
}

/// Structural expression equality ignoring resolved column indexes
/// (rewriting runs before binding; a repeated binder must not care).
fn same_expr(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Col { name: an, .. }, Expr::Col { name: bn, .. }) => an.eq_ignore_ascii_case(bn),
        (Expr::Lit(x), Expr::Lit(y)) => x == y,
        (Expr::Cmp(ao, al, ar), Expr::Cmp(bo, bl, br)) => {
            ao == bo && same_expr(al, bl) && same_expr(ar, br)
        }
        (Expr::And(al, ar), Expr::And(bl, br)) | (Expr::Or(al, ar), Expr::Or(bl, br)) => {
            same_expr(al, bl) && same_expr(ar, br)
        }
        (Expr::Not(ai), Expr::Not(bi)) => same_expr(ai, bi),
        (Expr::Arith(ao, al, ar), Expr::Arith(bo, bl, br)) => {
            ao == bo && same_expr(al, bl) && same_expr(ar, br)
        }
        (Expr::Greatest(xs), Expr::Greatest(ys)) | (Expr::Least(xs), Expr::Least(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| same_expr(x, y))
        }
        (Expr::IsNull(ai, an), Expr::IsNull(bi, bn)) => an == bn && same_expr(ai, bi),
        _ => false,
    }
}

fn match_pat(p: &Pat, e: &Expr, b: &mut Binds) -> bool {
    match p {
        Pat::Bind(name, kind) => {
            let ok = match kind {
                BindKind::Any => true,
                BindKind::Col => matches!(e, Expr::Col { .. }),
                BindKind::Lit => matches!(e, Expr::Lit(_)),
            };
            if !ok {
                return false;
            }
            if let Some((_, prev)) = b.exprs.iter().find(|(n, _)| n == name) {
                return same_expr(prev, e);
            }
            b.exprs.push((name.clone(), e.clone()));
            true
        }
        Pat::Cmp(op_pat, pl, pr) => match e {
            Expr::Cmp(op, l, r) => {
                match op_pat {
                    OpPat::Exact(want) => {
                        if want != op {
                            return false;
                        }
                    }
                    OpPat::Bind(name) => {
                        if let Some((_, prev)) = b.ops.iter().find(|(n, _)| n == name) {
                            if prev != op {
                                return false;
                            }
                        } else {
                            b.ops.push((name.clone(), *op));
                        }
                    }
                }
                match_pat(pl, l, b) && match_pat(pr, r, b)
            }
            _ => false,
        },
        Pat::And(pl, pr) => match e {
            Expr::And(l, r) => match_pat(pl, l, b) && match_pat(pr, r, b),
            _ => false,
        },
        Pat::Or(pl, pr) => match e {
            Expr::Or(l, r) => match_pat(pl, l, b) && match_pat(pr, r, b),
            _ => false,
        },
        Pat::Not(pi) => match e {
            Expr::Not(i) => match_pat(pi, i, b),
            _ => false,
        },
    }
}

fn instantiate(t: &Template, b: &Binds) -> Expr {
    match t {
        Template::Var(n) => {
            b.exprs.iter().find(|(bn, _)| bn == n).map(|(_, e)| e.clone()).unwrap_or_else(|| {
                // unreachable: load-time validation rejects unbound vars
                Expr::lit(0i64)
            })
        }
        Template::Cmp(op, l, r) => {
            let bound = |n: &str| {
                b.ops.iter().find(|(bn, _)| bn == n).map(|(_, o)| *o).unwrap_or(CmpOp::Eq)
            };
            let op = match op {
                OpTemplate::Exact(o) => *o,
                OpTemplate::Var(n) => bound(n),
                OpTemplate::Flip(n) => bound(n).flip(),
                OpTemplate::Negate(n) => negate_op(bound(n)),
            };
            Expr::cmp(op, instantiate(l, b), instantiate(r, b))
        }
        Template::And(l, r) => Expr::and(instantiate(l, b), instantiate(r, b)),
        Template::Or(l, r) => Expr::or(instantiate(l, b), instantiate(r, b)),
        Template::Not(i) => Expr::not(instantiate(i, b)),
    }
}

/// One whole-tree sweep: expression rules bottom-up over every predicate
/// and projection item, then plan passes bottom-up over the operator
/// tree. `changed` records whether anything fired.
struct Sweep<'a> {
    packs: &'a [RulePack],
    counts: &'a mut Vec<Vec<u64>>,
    changed: bool,
    src: &'a dyn SchemaSource,
}

impl Sweep<'_> {
    fn expr(&mut self, e: &Expr) -> Expr {
        // children first
        let rebuilt = match e {
            Expr::Col { .. } | Expr::Lit(_) => e.clone(),
            Expr::Cmp(op, l, r) => Expr::cmp(*op, self.expr(l), self.expr(r)),
            Expr::And(l, r) => Expr::and(self.expr(l), self.expr(r)),
            Expr::Or(l, r) => Expr::or(self.expr(l), self.expr(r)),
            Expr::Not(i) => Expr::not(self.expr(i)),
            Expr::Arith(op, l, r) => {
                Expr::Arith(*op, Box::new(self.expr(l)), Box::new(self.expr(r)))
            }
            Expr::Greatest(es) => Expr::Greatest(es.iter().map(|x| self.expr(x)).collect()),
            Expr::Least(es) => Expr::Least(es.iter().map(|x| self.expr(x)).collect()),
            Expr::IsNull(i, neg) => Expr::IsNull(Box::new(self.expr(i)), *neg),
        };
        // then this node: first matching rule fires once per sweep
        for (pi, pack) in self.packs.iter().enumerate() {
            for (ri, rule) in pack.rules.iter().enumerate() {
                let RuleKind::Expr { pattern, replace } = &rule.kind else { continue };
                let mut b = Binds::default();
                if match_pat(pattern, &rebuilt, &mut b) {
                    let new = instantiate(replace, &b);
                    if !same_expr(&new, &rebuilt) {
                        self.counts[pi][ri] += 1;
                        self.changed = true;
                        return new;
                    }
                }
            }
        }
        rebuilt
    }

    fn plan(&mut self, node: Logical) -> Logical {
        // children (and their expressions) first
        let node = match node {
            Logical::Get { .. } => node,
            Logical::Select { pred, input } => {
                Logical::Select { pred: self.expr(&pred), input: Box::new(self.plan(*input)) }
            }
            Logical::Project { items, input } => Logical::Project {
                items: items
                    .into_iter()
                    .map(|it| ProjItem { expr: self.expr(&it.expr), alias: it.alias })
                    .collect(),
                input: Box::new(self.plan(*input)),
            },
            Logical::Sort { keys, input } => {
                Logical::Sort { keys, input: Box::new(self.plan(*input)) }
            }
            Logical::Join { eq, left, right } => Logical::Join {
                eq,
                left: Box::new(self.plan(*left)),
                right: Box::new(self.plan(*right)),
            },
            Logical::TJoin { eq, left, right } => Logical::TJoin {
                eq,
                left: Box::new(self.plan(*left)),
                right: Box::new(self.plan(*right)),
            },
            Logical::Product { left, right } => Logical::Product {
                left: Box::new(self.plan(*left)),
                right: Box::new(self.plan(*right)),
            },
            Logical::TAggr { group_by, aggs, input } => {
                Logical::TAggr { group_by, aggs, input: Box::new(self.plan(*input)) }
            }
            Logical::DupElim { input } => Logical::DupElim { input: Box::new(self.plan(*input)) },
            Logical::Coalesce { input } => Logical::Coalesce { input: Box::new(self.plan(*input)) },
            Logical::Diff { left, right } => Logical::Diff {
                left: Box::new(self.plan(*left)),
                right: Box::new(self.plan(*right)),
            },
            Logical::TransferM { input } => {
                Logical::TransferM { input: Box::new(self.plan(*input)) }
            }
            Logical::TransferD { input } => {
                Logical::TransferD { input: Box::new(self.plan(*input)) }
            }
        };
        // then plan passes at this node: first firing pass wins the sweep
        for (pi, pack) in self.packs.iter().enumerate() {
            for (ri, rule) in pack.rules.iter().enumerate() {
                let RuleKind::Pass(pass) = &rule.kind else { continue };
                if let Some(new) = apply_pass(*pass, &node, self.src) {
                    self.counts[pi][ri] += 1;
                    self.changed = true;
                    return new;
                }
            }
        }
        node
    }
}

// ---------------------------------------------------------------------------
// Plan passes.
// ---------------------------------------------------------------------------

fn apply_pass(pass: PlanPass, node: &Logical, src: &dyn SchemaSource) -> Option<Logical> {
    match pass {
        PlanPass::ProductToJoin => pass_product_to_join(node, src),
        PlanPass::MergeSelects => pass_merge_selects(node),
        PlanPass::SqlOverlapToTJoin => pass_overlap_to_tjoin(node, src),
    }
}

/// `σ_{q ∧ p}` keeps exactly the rows where both `q` and `p` are TRUE
/// (Kleene AND), i.e. the rows `σ_p(σ_q(·))` keeps.
fn pass_merge_selects(node: &Logical) -> Option<Logical> {
    let Logical::Select { pred: p, input } = node else { return None };
    let Logical::Select { pred: q, input: inner } = input.as_ref() else { return None };
    Some(Logical::Select {
        pred: Expr::and(q.clone(), p.clone()),
        input: Box::new(inner.as_ref().clone()),
    })
}

fn pass_product_to_join(node: &Logical, src: &dyn SchemaSource) -> Option<Logical> {
    let Logical::Select { pred, input } = node else { return None };
    let Logical::Product { left, right } = input.as_ref() else { return None };
    let ls = left.output_schema(src).ok()?;
    let rs = right.output_schema(src).ok()?;
    let concat = concat_schemas(&ls, &rs);
    let nl = ls.len();
    let mut eq: Vec<(String, String)> = Vec::new();
    let mut rest: Vec<Expr> = Vec::new();
    for c in pred.conjuncts() {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col { name: an, .. }, Expr::Col { name: bn, .. }) =
                (a.as_ref(), b.as_ref())
            {
                let ai = concat.index_of(an).ok();
                let bi = concat.index_of(bn).ok();
                if let (Some(ai), Some(bi)) = (ai, bi) {
                    // a cross-input equality becomes a join key: the left
                    // side by its (concatenated) output name, the right
                    // side by the right input's own attribute name —
                    // the convention `Logical::Join` uses everywhere
                    if ai < nl && bi >= nl {
                        eq.push((concat.attr(ai).name.clone(), rs.attr(bi - nl).name.clone()));
                        continue;
                    }
                    if bi < nl && ai >= nl {
                        eq.push((concat.attr(bi).name.clone(), rs.attr(ai - nl).name.clone()));
                        continue;
                    }
                }
            }
        }
        rest.push(c.clone());
    }
    if eq.is_empty() {
        return None;
    }
    let join = Logical::Join {
        eq,
        left: Box::new(left.as_ref().clone()),
        right: Box::new(right.as_ref().clone()),
    };
    // Join and Product share the concatenated output schema, so dropping
    // the consumed conjuncts is layout-preserving by construction.
    Some(match Expr::and_all(rest) {
        Some(p) => join.select(p),
        None => join,
    })
}

/// The inverse of `Translator-To-SQL`'s `TJOIN^D` rendering (Figure 5):
/// `π_{…, GREATEST(A.T1,B.T1), LEAST(A.T2,B.T2)}(σ_{A.T1<B.T2 ∧ B.T1<A.T2}(A ⋈_eq B))`
/// → `π'(A ⋈ᵀ_eq B)`. Sound because `Period::intersect` is defined
/// exactly when `start < end` — the same strict overlap the selection
/// tests — and the intersection endpoints are exactly the
/// `GREATEST`/`LEAST` items. Bails (no fire) unless the shape matches
/// completely and the rewritten output schema is byte-identical.
fn pass_overlap_to_tjoin(node: &Logical, src: &dyn SchemaSource) -> Option<Logical> {
    let Logical::Project { items, input } = node else { return None };
    let Logical::Select { pred, input: jin } = input.as_ref() else { return None };
    let Logical::Join { eq, left, right } = jin.as_ref() else { return None };
    if eq.is_empty() {
        return None;
    }
    let ls = left.output_schema(src).ok()?;
    let rs = right.output_schema(src).ok()?;
    let (lp1, lp2) = ls.period()?;
    let (rp1, rp2) = rs.period()?;
    let concat = concat_schemas(&ls, &rs);
    let nl = ls.len();
    let cname = |i: usize| concat.attr(i).name.to_string();
    let (lt1, lt2) = (cname(lp1), cname(lp2));
    let (rt1, rt2) = (cname(nl + rp1), cname(nl + rp2));

    // the two strict-overlap conjuncts, in either `<` or flipped `>` form
    let mut start_before_rend = false; // A.T1 < B.T2
    let mut rstart_before_end = false; // B.T1 < A.T2
    let mut rest: Vec<Expr> = Vec::new();
    for c in pred.conjuncts() {
        let lt = match c {
            Expr::Cmp(CmpOp::Lt, x, y) => Some((x.as_ref(), y.as_ref())),
            Expr::Cmp(CmpOp::Gt, x, y) => Some((y.as_ref(), x.as_ref())),
            _ => None,
        };
        if let Some((Expr::Col { name: x, .. }, Expr::Col { name: y, .. })) = lt {
            if !start_before_rend && x.eq_ignore_ascii_case(&lt1) && y.eq_ignore_ascii_case(&rt2) {
                start_before_rend = true;
                continue;
            }
            if !rstart_before_end && x.eq_ignore_ascii_case(&rt1) && y.eq_ignore_ascii_case(&lt2) {
                rstart_before_end = true;
                continue;
            }
        }
        rest.push(c.clone());
    }
    if !(start_before_rend && rstart_before_end) {
        return None;
    }

    // join keys must not be period columns (TJoin drops the right keys
    // and replaces both periods with the intersection)
    for (ln, rn) in eq {
        let li = ls.index_of(ln).ok()?;
        let ri = rs.index_of(rn).ok()?;
        if li == lp1 || li == lp2 || ri == rp1 || ri == rp2 {
            return None;
        }
    }

    let tjs = tjoin_schema(eq, &ls, &rs).ok()?;
    let (tj1, tj2) = {
        let (a, b) = tjs.period()?;
        (tjs.attr(a).name.to_string(), tjs.attr(b).name.to_string())
    };
    // concatenated name → TJoin output name, for every non-period column
    let mut map: Vec<(String, String)> = Vec::new();
    for (i, a) in ls.attrs().iter().enumerate() {
        if i != lp1 && i != lp2 {
            map.push((a.name.clone(), a.name.clone()));
        }
    }
    let left_kept = ls.len() - 2;
    let mut k = 0usize;
    for j in 0..rs.len() {
        if j == rp1 || j == rp2 {
            continue;
        }
        let concat_name = cname(nl + j);
        let key = eq.iter().find(|(_, rc)| rs.index_of(rc).map(|x| x == j).unwrap_or(false));
        match key {
            // a dropped right key is still addressable through its left
            // partner (they are equal on every output row)
            Some((ln, _)) => map.push((concat_name, ln.clone())),
            None => {
                map.push((concat_name, tjs.attr(left_kept + k).name.clone()));
                k += 1;
            }
        }
    }
    let is_period = |n: &str| [&lt1, &lt2, &rt1, &rt2].iter().any(|p| n.eq_ignore_ascii_case(p));
    let remap = |e: &Expr| -> Option<Expr> {
        let mut out = e.clone();
        let mut ok = true;
        rename_cols(&mut out, &mut |name: &mut String| {
            if is_period(name) {
                ok = false;
                return;
            }
            match map.iter().find(|(from, _)| from.eq_ignore_ascii_case(name)) {
                Some((_, to)) => *name = to.clone(),
                None => ok = false,
            }
        });
        ok.then_some(out)
    };
    let is_pair = |es: &[Expr], a: &str, b: &str| -> bool {
        if es.len() != 2 {
            return false;
        }
        let name = |e: &Expr| match e {
            Expr::Col { name, .. } => Some(name.clone()),
            _ => None,
        };
        match (name(&es[0]), name(&es[1])) {
            (Some(x), Some(y)) => {
                (x.eq_ignore_ascii_case(a) && y.eq_ignore_ascii_case(b))
                    || (x.eq_ignore_ascii_case(b) && y.eq_ignore_ascii_case(a))
            }
            _ => false,
        }
    };

    let mut new_items = Vec::with_capacity(items.len());
    for it in items {
        let e = match &it.expr {
            Expr::Greatest(es) if is_pair(es, &lt1, &rt1) => Expr::col(tj1.clone()),
            Expr::Least(es) if is_pair(es, &lt2, &rt2) => Expr::col(tj2.clone()),
            other => remap(other)?,
        };
        new_items.push(ProjItem { expr: e, alias: it.alias.clone() });
    }
    let mut rest_mapped = Vec::with_capacity(rest.len());
    for c in &rest {
        rest_mapped.push(remap(c)?);
    }

    let tjoin = Logical::TJoin {
        eq: eq.clone(),
        left: Box::new(left.as_ref().clone()),
        right: Box::new(right.as_ref().clone()),
    };
    let inner = match Expr::and_all(rest_mapped) {
        Some(p) => tjoin.select(p),
        None => tjoin,
    };
    let new = Logical::Project { items: new_items, input: Box::new(inner) };
    // safety net: the rewrite must preserve the node's output schema
    let before = node.output_schema(src).ok()?;
    let after = new.output_schema(src).ok()?;
    (before == after).then_some(new)
}

/// Apply `f` to every column name of `e`, in place.
fn rename_cols(e: &mut Expr, f: &mut dyn FnMut(&mut String)) {
    match e {
        Expr::Col { name, .. } => f(name),
        Expr::Lit(_) => {}
        Expr::Cmp(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Arith(_, l, r) => {
            rename_cols(l, f);
            rename_cols(r, f);
        }
        Expr::Not(i) | Expr::IsNull(i, _) => rename_cols(i, f),
        Expr::Greatest(es) | Expr::Least(es) => {
            for x in es {
                rename_cols(x, f);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON reader. The workspace deliberately has no JSON parser
// (tango-trace only writes), and no new dependencies may be added — so
// rule packs get a small, strict, offset-reporting recursive-descent one.
// ---------------------------------------------------------------------------

mod json {
    /// A parsed JSON value; object keys keep file order (the canonical
    /// formatter depends on it).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Obj(Vec<(String, Json)>),
        Arr(Vec<Json>),
        Str(String),
        Num(f64),
        Bool(bool),
        Null,
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.fail("trailing characters after the top-level value"));
        }
        Ok(v)
    }

    /// Quote a string as a JSON literal.
    pub fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn fail(&self, msg: &str) -> String {
            let (mut line, mut col) = (1usize, 1usize);
            for &c in &self.b[..self.i.min(self.b.len())] {
                if c == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            format!("line {line}, col {col}: {msg}")
        }

        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.fail(&format!("expected '{}'", c as char)))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.keyword("true", Json::Bool(true)),
                Some(b'f') => self.keyword("false", Json::Bool(false)),
                Some(b'n') => self.keyword("null", Json::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.fail("expected a JSON value")),
            }
        }

        fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(self.fail(&format!("expected '{word}'")))
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.eat(b'{')?;
            let mut kv = Vec::new();
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(Json::Obj(kv));
            }
            loop {
                self.ws();
                let key = self.string()?;
                if kv.iter().any(|(k, _)| *k == key) {
                    return Err(self.fail(&format!("duplicate key \"{key}\"")));
                }
                self.ws();
                self.eat(b':')?;
                self.ws();
                let v = self.value()?;
                kv.push((key, v));
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Json::Obj(kv));
                    }
                    _ => return Err(self.fail("expected ',' or '}' in object")),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.ws();
                items.push(self.value()?);
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(self.fail("expected ',' or ']' in array")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.fail("unterminated string")),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                if self.i + 4 >= self.b.len() {
                                    return Err(self.fail("truncated \\u escape"));
                                }
                                let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                    .map_err(|_| self.fail("bad \\u escape"))?;
                                let n = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.fail("bad \\u escape"))?;
                                out.push(
                                    char::from_u32(n)
                                        .ok_or_else(|| self.fail("bad \\u code point"))?,
                                );
                                self.i += 4;
                            }
                            _ => return Err(self.fail("unknown escape")),
                        }
                        self.i += 1;
                    }
                    Some(_) => {
                        // consume one UTF-8 scalar
                        let rest = std::str::from_utf8(&self.b[self.i..])
                            .map_err(|_| self.fail("invalid UTF-8"))?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.i += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.peek() == Some(b'.') {
                self.i += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            let text = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
            text.parse::<f64>().map(Json::Num).map_err(|_| self.fail("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::{Attr, Schema, SortSpec, Type};

    struct Schemas(Vec<(String, Schema)>);

    impl SchemaSource for Schemas {
        fn table_schema(&self, t: &str) -> tango_algebra::Result<Schema> {
            self.0
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(t))
                .map(|(_, s)| s.clone())
                .ok_or_else(|| tango_algebra::AlgebraError::Schema(format!("no table {t}")))
        }
    }

    fn position() -> Schema {
        Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("EmpID", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ])
    }

    fn src() -> Schemas {
        Schemas(vec![("POSITION".into(), position())])
    }

    fn pack(text: &str) -> RulePack {
        RulePack::parse(text, "<inline>").unwrap()
    }

    const NOT_CMP: &str = r#"{
        "pack": "t", "description": "d",
        "rules": [
            {"name": "not-cmp", "kind": "expr",
             "match": ["not", ["cmp", "?op", "?a", "?b"]],
             "replace": ["cmp", ["negate", "?op"], "?a", "?b"]}
        ]
    }"#;

    #[test]
    fn not_cmp_fires_and_counts() {
        let rw = Rewriter::from_packs(vec![pack(NOT_CMP)]);
        let plan = Logical::Get { table: "POSITION".into() }.select(Expr::not(Expr::cmp(
            CmpOp::Gt,
            Expr::col("T1"),
            Expr::lit(10i64),
        )));
        let (out, outcome) = rw.apply(plan, &src());
        let Logical::Select { pred, .. } = &out else { panic!("expected select") };
        assert!(same_expr(&pred.clone(), &Expr::cmp(CmpOp::Le, Expr::col("T1"), Expr::lit(10i64))));
        assert_eq!(outcome.total_fires(), 1);
        assert!(!outcome.budget_hit);
        assert_eq!(outcome.fires[0].pack, "t");
        assert_eq!(outcome.fires[0].rule, "not-cmp");
    }

    #[test]
    fn no_match_leaves_plan_unchanged() {
        let rw = Rewriter::from_packs(vec![pack(NOT_CMP)]);
        let plan = Logical::Get { table: "POSITION".into() }
            .select(Expr::cmp(CmpOp::Le, Expr::col("T1"), Expr::lit(10i64)))
            .sort(SortSpec::by(["PosID"]));
        let before = format!("{plan}");
        let (out, outcome) = rw.apply(plan, &src());
        assert_eq!(format!("{out}"), before);
        assert!(outcome.is_empty());
        assert_eq!(outcome.passes, 1);
    }

    #[test]
    fn looping_rules_hit_budget_not_hang() {
        // a comparison-flipper alone loops forever: budget must stop it
        let looping = pack(
            r#"{
            "pack": "loop", "description": "d", "budget": 4,
            "rules": [
                {"name": "flip", "kind": "expr",
                 "match": ["cmp", "?op", "?a", "?b"],
                 "replace": ["cmp", ["flip", "?op"], "?b", "?a"]}
            ]
        }"#,
        );
        let rw = Rewriter::from_packs(vec![looping]);
        let plan = Logical::Get { table: "POSITION".into() }.select(Expr::cmp(
            CmpOp::Lt,
            Expr::col("T1"),
            Expr::lit(10i64),
        ));
        let (_, outcome) = rw.apply(plan, &src());
        assert!(outcome.budget_hit);
        assert_eq!(outcome.passes, 4);
        assert_eq!(outcome.total_fires(), 4);
    }

    #[test]
    fn binder_kinds_and_repeats() {
        // ?x repeated must bind equal expressions; :lit must reject cols
        let p = pack(
            r#"{
            "pack": "t", "description": "d",
            "rules": [
                {"name": "self-eq", "kind": "expr",
                 "match": ["cmp", "=", "?x:col", "?x:col"],
                 "replace": ["cmp", "<=", "?x", "?x"]}
            ]
        }"#,
        );
        let rw = Rewriter::from_packs(vec![p]);
        let hit = Logical::Get { table: "POSITION".into() }
            .select(Expr::eq(Expr::col("T1"), Expr::col("T1")));
        let (_, o) = rw.apply(hit, &src());
        assert_eq!(o.total_fires(), 1);
        let miss = Logical::Get { table: "POSITION".into() }
            .select(Expr::eq(Expr::col("T1"), Expr::col("T2")));
        let (_, o) = rw.apply(miss, &src());
        assert_eq!(o.total_fires(), 0);
        let lit = Logical::Get { table: "POSITION".into() }
            .select(Expr::eq(Expr::lit(1i64), Expr::lit(1i64)));
        let (_, o) = rw.apply(lit, &src());
        assert_eq!(o.total_fires(), 0, ":col must not match literals");
    }

    #[test]
    fn product_to_join_extracts_cross_keys() {
        let p = pack(
            r#"{
            "pack": "t", "description": "d",
            "rules": [{"name": "p2j", "kind": "pass", "pass": "product-to-join"}]
        }"#,
        );
        let rw = Rewriter::from_packs(vec![p]);
        let plan = Logical::Product {
            left: Box::new(Logical::Get { table: "POSITION".into() }),
            right: Box::new(Logical::Get { table: "POSITION".into() }),
        }
        .select(Expr::and(
            Expr::eq(Expr::col("PosID"), Expr::col("PosID_2")),
            Expr::cmp(CmpOp::Lt, Expr::col("T1"), Expr::lit(10i64)),
        ));
        let before = plan.output_schema(&src()).unwrap();
        let (out, o) = rw.apply(plan, &src());
        assert_eq!(o.total_fires(), 1);
        let after = out.output_schema(&src()).unwrap();
        assert_eq!(before, after, "rewrite must preserve the output schema");
        let rendered = format!("{out}");
        assert!(rendered.contains("JOIN"), "{rendered}");
        assert!(!rendered.contains("PRODUCT"), "{rendered}");
    }

    #[test]
    fn malformed_packs_rejected_with_useful_errors() {
        let cases: Vec<(&str, &str)> = vec![
            ("{", "expected"),
            (r#"{"pack": "x"}"#, "missing \"description\""),
            (r#"{"pack": "x", "description": "d"}"#, "missing \"rules\""),
            (r#"{"pack": "x", "description": "d", "rules": []}"#, "must not be empty"),
            (r#"{"pack": "x", "description": "d", "typo": 1, "rules": []}"#, "unknown rule-pack key \"typo\""),
            (
                r#"{"pack": "x", "description": "d", "rules": [{"name": "r", "kind": "pass", "pass": "nope"}]}"#,
                "unknown pass \"nope\" (known passes: product-to-join, merge-selects, sql-overlap-to-tjoin)",
            ),
            (
                r#"{"pack": "x", "description": "d", "rules": [{"name": "r", "kind": "expr", "match": "?a", "replace": "?b"}]}"#,
                "\"?b\" is not bound",
            ),
            (
                r#"{"pack": "x", "description": "d", "rules": [{"name": "r", "kind": "expr", "match": ["wat", "?a"], "replace": "?a"}]}"#,
                "unknown pattern form \"wat\"",
            ),
            (r#"{"pack": "x", "description": "d", "budget": 0, "rules": []}"#, "\"budget\" must be"),
        ];
        for (text, needle) in cases {
            let e = RulePack::parse(text, "<inline>").unwrap_err().to_string();
            assert!(e.contains(needle), "error {e:?} should contain {needle:?}");
            assert!(e.contains("<inline>"), "error {e:?} should name its origin");
        }
        let e = Rewriter::load(&["no-such-pack".to_string()]).unwrap_err().to_string();
        assert!(e.contains("no-such-pack") && e.contains("tried"), "{e}");
    }

    #[test]
    fn canonical_json_round_trips() {
        let p = pack(NOT_CMP);
        let canon = p.canonical_json();
        let reparsed = RulePack::parse(&canon, "<canon>").unwrap();
        assert_eq!(reparsed.canonical_json(), canon, "canonical form must be a fixpoint");
    }

    /// The `cargo fmt`-style lint for rule packs: every checked-in file
    /// under `rules/` must be byte-equal to its canonical rendering
    /// (stable key order, two-space indent, patterns inline).
    #[test]
    fn rule_pack_files_are_canonical() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("rules");
        let mut seen = 0;
        for entry in std::fs::read_dir(&dir).expect("rules/ directory") {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            seen += 1;
            let text = std::fs::read_to_string(&path).unwrap();
            let pack = RulePack::parse(&text, &path.display().to_string()).unwrap();
            assert_eq!(
                text,
                pack.canonical_json(),
                "{} is not canonically formatted — regenerate with RulePack::canonical_json()",
                path.display()
            );
            assert_eq!(
                Some(pack.name.as_str()),
                path.file_stem().and_then(|s| s.to_str()),
                "pack name must match its file stem"
            );
        }
        assert!(seen >= 3, "expected the three shipped packs under rules/, found {seen}");
    }
}
