//! The transformation rules of Section 4.
//!
//! How the paper's rules map to this implementation:
//!
//! * **T1–T3** (move taggr/join/tjoin to the middleware, with the sorts
//!   their algorithms need) and **T4–T6** (move σ/π/sort) are subsumed by
//!   the physical-property design: transfers and sorts are enforcers, so
//!   every placement the rules could generate is explored by the search
//!   (see `crate::opt`).
//! * **T7–T8** (cancel `T^M`/`T^D` pairs) and **T10–T12** (redundant
//!   sorts) hold structurally for the same reason.
//! * **T9** (identity projection removal) is avoided at plan-construction
//!   time: the parser never emits identity projections.
//! * **E1** (σ/π commute), **E2** (join/product commutativity), **E4/E5**
//!   (sort commutes with σ/π in the middleware — a consequence of the
//!   middleware algorithms being order-preserving, encoded in their
//!   implementations) appear below, together with the rule groups 3
//!   ("combining several operations into one") and 4 ("reducing
//!   arguments to expensive operations") the paper describes in its
//!   technical report.
//! * **E3** (join associativity) is omitted: the paper itself notes
//!   (Section 5.3) that multi-join queries would need join-order
//!   heuristics instead, and no evaluated query exercises it. TJoin
//!   commutativity is likewise omitted — under a name-based algebra the
//!   key-column rename mapping is ambiguous, and the sort-merge
//!   implementation is cost-symmetric anyway.

use crate::opt::{OptOptions, TangoSem};
use crate::phys::TOp;
use tango_algebra::logical::concat_schemas;
use tango_algebra::{CmpOp, Expr, ProjItem, Schema};
use volcano::{ExprId, Memo, NewExpr, Rule, RuleKind};

/// Build the active rule set.
pub fn rule_set(options: OptOptions) -> Vec<Box<dyn Rule<TangoSem>>> {
    let mut rules: Vec<Box<dyn Rule<TangoSem>>> = vec![
        Box::new(CommuteJoin),
        Box::new(CommuteProduct),
        Box::new(MergeSelects),
        Box::new(MergeProjects),
    ];
    if options.pushdown_rules {
        rules.push(Box::new(PushSelectThroughProject));
        rules.push(Box::new(PushSelectIntoJoin));
        rules.push(Box::new(PushSelectIntoTJoin));
        rules.push(Box::new(TJoinWindowPush));
        rules.push(Box::new(PushSelectBelowTAggr));
        rules.push(Box::new(PruneTAggrInput));
        rules.push(Box::new(PruneJoinInputs));
    }
    if options.approx_rules && options.pushdown_rules {
        rules.push(Box::new(TAggrWindowPush));
        rules.push(Box::new(CoalesceSelectSwap));
    }
    rules
}

type Tree = NewExpr<TOp>;

fn group(g: volcano::GroupId) -> Tree {
    NewExpr::Group(g)
}

fn op(o: TOp, kids: Vec<Tree>) -> Tree {
    NewExpr::Op(o, kids)
}

fn select(pred: Expr, input: Tree) -> Tree {
    op(TOp::Select { pred }, vec![input])
}

/// E2 for ⋈: `r1 ⋈ r2 ≡_M r2 ⋈ r1`, with a projection restoring the
/// original column layout (our relations are positional lists).
struct CommuteJoin;

impl Rule<TangoSem> for CommuteJoin {
    fn name(&self) -> &'static str {
        "E2-commute-join"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Multiset
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Join { eq } = &e.op else {
            return vec![];
        };
        let flipped: Vec<(String, String)> =
            eq.iter().map(|(l, r)| (r.clone(), l.clone())).collect();
        let (lg, rg) = (e.children[0], e.children[1]);
        commute_with_restore(memo, lg, rg, TOp::Join { eq: flipped })
    }
}

/// E2 for ×.
struct CommuteProduct;

impl Rule<TangoSem> for CommuteProduct {
    fn name(&self) -> &'static str {
        "E2-commute-product"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Multiset
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        if e.op != TOp::Product {
            return vec![];
        }
        let (lg, rg) = (e.children[0], e.children[1]);
        commute_with_restore(memo, lg, rg, TOp::Product)
    }
}

/// Build `π_restore(op(R, L))` whose output matches `op(L, R)`'s layout.
fn commute_with_restore(
    memo: &Memo<TangoSem>,
    lg: volcano::GroupId,
    rg: volcano::GroupId,
    flipped_op: TOp,
) -> Vec<Tree> {
    let ls = &memo.props(lg).schema;
    let rs = &memo.props(rg).schema;
    let orig = concat_schemas(ls, rs);
    let flip = concat_schemas(rs, ls);
    // positional mapping: original column i comes from flipped position j
    let n_l = ls.len();
    let n_r = rs.len();
    let mut items = Vec::with_capacity(orig.len());
    for (i, a) in orig.attrs().iter().enumerate() {
        let j = if i < n_l { n_r + i } else { i - n_l };
        items.push(ProjItem::named(Expr::col(flip.attr(j).name.clone()), a.name.clone()));
    }
    vec![op(TOp::Project { items }, vec![op(flipped_op, vec![group(rg), group(lg)])])]
}

/// Rule group 3: `σ_P1(σ_P2(r)) → σ_{P2 ∧ P1}(r)`.
struct MergeSelects;

impl Rule<TangoSem> for MergeSelects {
    fn name(&self) -> &'static str {
        "G3-merge-selects"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Select { pred: p1 } = &e.op else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            if let TOp::Select { pred: p2 } = &c.op {
                out.push(select(Expr::and(p2.clone(), p1.clone()), group(c.children[0])));
            }
        }
        out
    }
}

/// Rule group 3: `π_1(π_2(r)) → π'(r)` by substituting inner expressions
/// into outer column references.
struct MergeProjects;

impl Rule<TangoSem> for MergeProjects {
    fn name(&self) -> &'static str {
        "G3-merge-projects"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Project { items: outer } = &e.op else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            if let TOp::Project { items: inner } = &c.op {
                if let Some(merged) = substitute_items(outer, inner) {
                    out.push(op(TOp::Project { items: merged }, vec![group(c.children[0])]));
                }
            }
        }
        out
    }
}

/// Substitute `inner` item definitions into `outer` expressions; bails on
/// unresolvable references.
fn substitute_items(outer: &[ProjItem], inner: &[ProjItem]) -> Option<Vec<ProjItem>> {
    let mut merged = Vec::with_capacity(outer.len());
    for it in outer {
        merged.push(ProjItem::named(substitute(&it.expr, inner)?, it.alias.clone()));
    }
    Some(merged)
}

fn substitute(e: &Expr, inner: &[ProjItem]) -> Option<Expr> {
    Some(match e {
        Expr::Col { name, .. } => {
            let bare = name.rsplit('.').next().unwrap_or(name);
            let hit = inner.iter().find(|i| i.alias.eq_ignore_ascii_case(bare))?;
            hit.expr.clone()
        }
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(o, l, r) => {
            Expr::Cmp(*o, Box::new(substitute(l, inner)?), Box::new(substitute(r, inner)?))
        }
        Expr::And(l, r) => Expr::and(substitute(l, inner)?, substitute(r, inner)?),
        Expr::Or(l, r) => Expr::or(substitute(l, inner)?, substitute(r, inner)?),
        Expr::Not(x) => Expr::not(substitute(x, inner)?),
        Expr::Arith(o, l, r) => {
            Expr::Arith(*o, Box::new(substitute(l, inner)?), Box::new(substitute(r, inner)?))
        }
        Expr::Greatest(es) => {
            Expr::Greatest(es.iter().map(|x| substitute(x, inner)).collect::<Option<_>>()?)
        }
        Expr::Least(es) => {
            Expr::Least(es.iter().map(|x| substitute(x, inner)).collect::<Option<_>>()?)
        }
        Expr::IsNull(x, n) => Expr::IsNull(Box::new(substitute(x, inner)?), *n),
    })
}

/// E1 (left-to-right): `π(σ_P(r))`-ward move — we implement the useful
/// direction `σ_P(π(r)) → π(σ_{P'}(r))` with `P'` = `P` substituted
/// through the projection (precondition `attr(P) ⊆ attr(items)` holds by
/// construction of the substitution).
struct PushSelectThroughProject;

impl Rule<TangoSem> for PushSelectThroughProject {
    fn name(&self) -> &'static str {
        "E1-push-select-project"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Select { pred } = &e.op else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            if let TOp::Project { items } = &c.op {
                if let Some(pushed) = substitute(pred, items) {
                    out.push(op(
                        TOp::Project { items: items.clone() },
                        vec![select(pushed, group(c.children[0]))],
                    ));
                }
            }
        }
        out
    }
}

/// Which side of a binary operator covers a predicate's columns.
fn side_of(pred: &Expr, l: &Schema, r: &Schema) -> Option<bool> {
    let cols = pred.columns();
    if cols.is_empty() {
        return None;
    }
    if cols.iter().all(|c| l.has(c)) {
        return Some(true);
    }
    if cols.iter().all(|c| r.has(c)) {
        return Some(false);
    }
    None
}

/// Rule group 4: push single-side conjuncts of a selection below a
/// regular join (or product — handled by the same matcher).
struct PushSelectIntoJoin;

impl Rule<TangoSem> for PushSelectIntoJoin {
    fn name(&self) -> &'static str {
        "G4-push-select-join"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Select { pred } = &e.op else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            let join_op = match &c.op {
                TOp::Join { .. } | TOp::Product => c.op.clone(),
                _ => continue,
            };
            let ls = &memo.props(c.children[0]).schema;
            let rs = &memo.props(c.children[1]).schema;
            let mut lpush = Vec::new();
            let mut rpush = Vec::new();
            let mut keep = Vec::new();
            for conj in pred.conjuncts() {
                match side_of(conj, ls, rs) {
                    Some(true) => lpush.push(conj.clone()),
                    Some(false) => rpush.push(conj.clone()),
                    None => keep.push(conj.clone()),
                }
            }
            if lpush.is_empty() && rpush.is_empty() {
                continue;
            }
            let mut lt = group(c.children[0]);
            if let Some(p) = Expr::and_all(lpush) {
                lt = select(p, lt);
            }
            let mut rt = group(c.children[1]);
            if let Some(p) = Expr::and_all(rpush) {
                rt = select(p, rt);
            }
            let mut t = op(join_op, vec![lt, rt]);
            if let Some(p) = Expr::and_all(keep) {
                t = select(p, t);
            }
            out.push(t);
        }
        out
    }
}

/// Rule group 4 for temporal joins: only non-temporal single-side
/// conjuncts may move below a ⋈ᵀ (the output period is the intersection,
/// so predicates over the output `T1`/`T2` do not refer to either input's
/// attributes).
struct PushSelectIntoTJoin;

impl Rule<TangoSem> for PushSelectIntoTJoin {
    fn name(&self) -> &'static str {
        "G4-push-select-tjoin"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Select { pred } = &e.op else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            let TOp::TJoin { eq } = &c.op else {
                continue;
            };
            let ls = &memo.props(c.children[0]).schema;
            let rs = &memo.props(c.children[1]).schema;
            let temporal = |s: &Schema, col: &str| {
                s.period().is_some_and(|(a, b)| {
                    s.index_of(col).map(|i| i == a || i == b).unwrap_or(false)
                })
            };
            let mut lpush = Vec::new();
            let mut rpush = Vec::new();
            let mut keep = Vec::new();
            for conj in pred.conjuncts() {
                let cols = conj.columns();
                let l_ok =
                    !cols.is_empty() && cols.iter().all(|cn| ls.has(cn) && !temporal(ls, cn));
                let r_ok =
                    !cols.is_empty() && cols.iter().all(|cn| rs.has(cn) && !temporal(rs, cn));
                if l_ok {
                    lpush.push(conj.clone());
                } else if r_ok {
                    rpush.push(conj.clone());
                } else {
                    keep.push(conj.clone());
                }
            }
            if lpush.is_empty() && rpush.is_empty() {
                continue;
            }
            let mut lt = group(c.children[0]);
            if let Some(p) = Expr::and_all(lpush) {
                lt = select(p, lt);
            }
            let mut rt = group(c.children[1]);
            if let Some(p) = Expr::and_all(rpush) {
                rt = select(p, rt);
            }
            let mut t = op(TOp::TJoin { eq: eq.clone() }, vec![lt, rt]);
            if let Some(p) = Expr::and_all(keep) {
                t = select(p, t);
            }
            out.push(t);
        }
        out
    }
}

/// Extract an `Overlaps(A, B)` window over `T1`/`T2` from a predicate's
/// conjuncts: `T1 < B` (or `<=`) together with `T2 > A` (or `>=`).
fn window_of(pred: &Expr) -> Option<(Expr, Expr)> {
    let is_t =
        |name: &str, t: &str| name.rsplit('.').next().unwrap_or(name).eq_ignore_ascii_case(t);
    let mut upper: Option<Expr> = None; // the B bound expr (literal side)
    let mut lower: Option<Expr> = None; // the A bound expr
    for conj in pred.conjuncts() {
        if let Expr::Cmp(op, l, r) = conj {
            if let (Expr::Col { name, .. }, Expr::Lit(_)) = (l.as_ref(), r.as_ref()) {
                if is_t(name, "T1") && matches!(op, CmpOp::Lt | CmpOp::Le) {
                    upper = Some(r.as_ref().clone());
                }
                if is_t(name, "T2") && matches!(op, CmpOp::Gt | CmpOp::Ge) {
                    lower = Some(r.as_ref().clone());
                }
            }
        }
    }
    Some((lower?, upper?))
}

/// Does a group already contain a selection with exactly this predicate?
/// (Guard against rules re-firing forever on their own output.)
fn has_selection(memo: &Memo<TangoSem>, g: volcano::GroupId, pred: &Expr) -> bool {
    memo.exprs_in(g)
        .iter()
        .any(|&eid| matches!(&memo.expr(eid).op, TOp::Select { pred: p } if p == pred))
}

/// Rule group 4 ("reducing arguments to expensive operations"): a
/// time-window selection above a temporal join also restricts both
/// arguments — tuples not overlapping the window cannot contribute an
/// overlapping output period. The top selection is kept, making this an
/// exact (`→_L`) rule.
struct TJoinWindowPush;

impl Rule<TangoSem> for TJoinWindowPush {
    fn name(&self) -> &'static str {
        "G4-tjoin-window-push"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Select { pred } = &e.op else {
            return vec![];
        };
        let Some((a, b)) = window_of(pred) else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            let TOp::TJoin { eq } = &c.op else {
                continue;
            };
            let win = Expr::overlaps("T1", "T2", a.clone(), b.clone());
            if has_selection(memo, c.children[0], &win) || has_selection(memo, c.children[1], &win)
            {
                continue;
            }
            out.push(select(
                pred.clone(),
                op(
                    TOp::TJoin { eq: eq.clone() },
                    vec![
                        select(win.clone(), group(c.children[0])),
                        select(win, group(c.children[1])),
                    ],
                ),
            ));
        }
        out
    }
}

/// Rule group 4: push conjuncts over grouping attributes below a
/// temporal aggregation — groups are independent, so filtering groups
/// before aggregating is exact.
struct PushSelectBelowTAggr;

impl Rule<TangoSem> for PushSelectBelowTAggr {
    fn name(&self) -> &'static str {
        "G4-push-select-taggr"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Select { pred } = &e.op else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            let TOp::TAggr { group_by, aggs } = &c.op else {
                continue;
            };
            let bare = |n: &str| n.rsplit('.').next().unwrap_or(n).to_uppercase();
            let grouping: Vec<String> = group_by.iter().map(|g| bare(g)).collect();
            let mut push = Vec::new();
            let mut keep = Vec::new();
            for conj in pred.conjuncts() {
                let cols = conj.columns();
                if !cols.is_empty() && cols.iter().all(|cn| grouping.contains(&bare(cn))) {
                    push.push(conj.clone());
                } else {
                    keep.push(conj.clone());
                }
            }
            let Some(pushed) = Expr::and_all(push) else {
                continue;
            };
            if has_selection(memo, c.children[0], &pushed) {
                continue;
            }
            let mut t = op(
                TOp::TAggr { group_by: group_by.clone(), aggs: aggs.clone() },
                vec![select(pushed, group(c.children[0]))],
            );
            if let Some(k) = Expr::and_all(keep) {
                t = select(k, t);
            }
            out.push(t);
        }
        out
    }
}

/// Rule group 4, *approximate*: push a time-window selection below a
/// temporal aggregation. Snapshot-preserving within the window (counts at
/// every time point inside the window are unchanged) but not list-exact:
/// constant periods touching the window edge may split differently. The
/// paper's Query 2 plans apply exactly this reduction ("this selection is
/// not needed for correctness, but it reduces the argument size").
struct TAggrWindowPush;

impl Rule<TangoSem> for TAggrWindowPush {
    fn name(&self) -> &'static str {
        "G4-taggr-window-push(approx)"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Multiset
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Select { pred } = &e.op else {
            return vec![];
        };
        let Some((a, b)) = window_of(pred) else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            let TOp::TAggr { group_by, aggs } = &c.op else {
                continue;
            };
            let win = Expr::overlaps("T1", "T2", a.clone(), b.clone());
            if has_selection(memo, c.children[0], &win) {
                continue;
            }
            out.push(select(
                pred.clone(),
                op(
                    TOp::TAggr { group_by: group_by.clone(), aggs: aggs.clone() },
                    vec![select(win, group(c.children[0]))],
                ),
            ));
        }
        out
    }
}

/// Rule group 4: temporal aggregation only reads its grouping attributes,
/// aggregate arguments, and the period — project everything else away
/// below it, shrinking what crosses the wire (the `PROJECT^D` under the
/// transfer in Figure 4(b)).
struct PruneTAggrInput;

impl Rule<TangoSem> for PruneTAggrInput {
    fn name(&self) -> &'static str {
        "G4-prune-taggr-input"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::TAggr { group_by, aggs } = &e.op else {
            return vec![];
        };
        let child = e.children[0];
        let schema = &memo.props(child).schema;
        let bare = |n: &str| n.rsplit('.').next().unwrap_or(n).to_uppercase();
        let mut needed: Vec<String> = group_by.iter().map(|g| bare(g)).collect();
        for a in aggs {
            if let Some(arg) = &a.arg {
                let b = bare(arg);
                if !needed.contains(&b) {
                    needed.push(b);
                }
            }
        }
        if let Some((t1, t2)) = schema.period() {
            needed.push(bare(&schema.attr(t1).name));
            needed.push(bare(&schema.attr(t2).name));
        }
        let items: Vec<ProjItem> = schema
            .attrs()
            .iter()
            .filter(|a| needed.contains(&bare(&a.name)))
            .map(|a| ProjItem::col(a.name.clone()))
            .collect();
        if items.len() >= schema.len() || items.is_empty() {
            return vec![]; // nothing to prune
        }
        // don't refire on an already-pruned child
        let already = memo.exprs_in(child).iter().any(|&cid| {
            matches!(&memo.expr(cid).op, TOp::Project { items: i } if i.len() == items.len())
        });
        if already {
            return vec![];
        }
        vec![op(
            TOp::TAggr { group_by: group_by.clone(), aggs: aggs.clone() },
            vec![op(TOp::Project { items }, vec![group(child)])],
        )]
    }
}

/// Rule group 4: a projection above a (temporal) join only needs each
/// side's referenced columns plus the join keys (and the period for ⋈ᵀ) —
/// project the rest away below the join. Also looks through one
/// intervening selection, whose columns are added to the needed set.
struct PruneJoinInputs;

impl Rule<TangoSem> for PruneJoinInputs {
    fn name(&self) -> &'static str {
        "G4-prune-join-inputs"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::List
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Project { items } = &e.op else {
            return vec![];
        };
        let bare = |n: &str| n.rsplit('.').next().unwrap_or(n).to_uppercase();
        let mut needed: Vec<String> = Vec::new();
        for it in items {
            for c in it.expr.columns() {
                let b = bare(&c);
                if !needed.contains(&b) {
                    needed.push(b);
                }
            }
        }
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            // optionally look through one selection
            let (select_pred, join_exprs): (Option<&Expr>, Vec<ExprId>) = match &c.op {
                TOp::Select { pred } => (Some(pred), memo.exprs_in(c.children[0]).to_vec()),
                TOp::Join { .. } | TOp::TJoin { .. } => (None, vec![cid]),
                _ => continue,
            };
            let mut needed_here = needed.clone();
            if let Some(p) = select_pred {
                for col in p.columns() {
                    let b = bare(&col);
                    if !needed_here.contains(&b) {
                        needed_here.push(b);
                    }
                }
            }
            for jid in join_exprs {
                let j = memo.expr(jid);
                let (eq, temporal) = match &j.op {
                    TOp::Join { eq } => (eq.clone(), false),
                    TOp::TJoin { eq } => (eq.clone(), true),
                    _ => continue,
                };
                let mut req = needed_here.clone();
                for (l, r) in &eq {
                    for k in [l, r] {
                        let b = bare(k);
                        if !req.contains(&b) {
                            req.push(b);
                        }
                    }
                }
                let prune_side = |g: volcano::GroupId| -> Option<Tree> {
                    let schema = &memo.props(g).schema;
                    let period = schema.period();
                    let keep: Vec<ProjItem> = schema
                        .attrs()
                        .iter()
                        .enumerate()
                        .filter(|(i, a)| {
                            let is_period = period.is_some_and(|(p1, p2)| *i == p1 || *i == p2);
                            (temporal && is_period) || req.contains(&bare(&a.name))
                        })
                        .map(|(_, a)| ProjItem::col(a.name.clone()))
                        .collect();
                    if keep.len() >= schema.len() || keep.is_empty() {
                        return None;
                    }
                    Some(op(TOp::Project { items: keep }, vec![group(g)]))
                };
                let lp = prune_side(j.children[0]);
                let rp = prune_side(j.children[1]);
                if lp.is_none() && rp.is_none() {
                    continue;
                }
                // verify the rewritten tree still resolves every outer
                // reference (clash-renaming may shift `_2` suffixes)
                let side_schema = |g: volcano::GroupId, pruned: &Option<Tree>| -> Schema {
                    match pruned {
                        None => memo.props(g).schema.as_ref().clone(),
                        Some(Tree::Op(TOp::Project { items }, _)) => {
                            let base = &memo.props(g).schema;
                            let mut attrs = Vec::new();
                            for it in items {
                                if let Ok(i) = base.index_of(&it.alias) {
                                    attrs.push(base.attr(i).clone());
                                }
                            }
                            Schema::with_inferred_period(attrs)
                        }
                        _ => memo.props(g).schema.as_ref().clone(),
                    }
                };
                let ls = side_schema(j.children[0], &lp);
                let rs = side_schema(j.children[1], &rp);
                let joined = match &j.op {
                    TOp::TJoin { eq } => match tango_algebra::logical::tjoin_schema(eq, &ls, &rs) {
                        Ok(s) => s,
                        Err(_) => continue,
                    },
                    _ => concat_schemas(&ls, &rs),
                };
                let resolves = |e: &Expr| e.columns().iter().all(|c| joined.has(c));
                if !items.iter().all(|it| resolves(&it.expr)) {
                    continue;
                }
                if let Some(p) = select_pred {
                    if !resolves(p) {
                        continue;
                    }
                }
                // guard against refiring
                if lp.is_some() {
                    let n_keep = ls.len();
                    let already = memo.exprs_in(j.children[0]).iter().any(|&x| {
                        matches!(&memo.expr(x).op, TOp::Project { items } if items.len() == n_keep)
                    });
                    if already {
                        continue;
                    }
                }
                let lt = lp.unwrap_or(group(j.children[0]));
                let rt = rp.unwrap_or(group(j.children[1]));
                let mut t = op(j.op.clone(), vec![lt, rt]);
                if let Some(p) = select_pred {
                    t = select(p.clone(), t);
                }
                out.push(op(TOp::Project { items: items.clone() }, vec![t]));
            }
        }
        out
    }
}

/// The Vassilakis (2000) coalesce/valid-time-selection optimization the
/// paper says "can be adopted in the form of transformation rules" when
/// coalescing is introduced: a time-window selection above a coalescing
/// also restricts its argument. Snapshot-preserving within the window
/// (like [`TAggrWindowPush`]): tuples merged across the window edge may
/// carry different (wider) periods, so the rule is flagged approximate
/// and the top selection is kept.
struct CoalesceSelectSwap;

impl Rule<TangoSem> for CoalesceSelectSwap {
    fn name(&self) -> &'static str {
        "V-coalesce-window-push(approx)"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Multiset
    }

    fn apply(&self, memo: &Memo<TangoSem>, expr: ExprId) -> Vec<Tree> {
        let e = memo.expr(expr);
        let TOp::Select { pred } = &e.op else {
            return vec![];
        };
        let Some((a, b)) = window_of(pred) else {
            return vec![];
        };
        let mut out = Vec::new();
        for &cid in memo.exprs_in(e.children[0]) {
            let c = memo.expr(cid);
            if c.op != TOp::Coalesce {
                continue;
            }
            let win = Expr::overlaps("T1", "T2", a.clone(), b.clone());
            if has_selection(memo, c.children[0], &win) {
                continue;
            }
            out.push(select(
                pred.clone(),
                op(TOp::Coalesce, vec![select(win, group(c.children[0]))]),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFactors;
    use crate::opt::{Catalog, GroupProps, TangoSem};
    use crate::phys::Site;
    use std::sync::Arc;
    use tango_algebra::{Attr, Type, Value};
    use tango_stats::RelationStats;
    use volcano::Memo;

    fn sem() -> TangoSem {
        let schema = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("PayRate", Type::Double),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        let stats = RelationStats { rows: 1000.0, avg_tuple_bytes: 28.0, ..Default::default() };
        let mut catalog: Catalog = Catalog::new();
        catalog.insert("POSITION".into(), (schema, stats));
        TangoSem {
            catalog,
            factors: CostFactors::default(),
            mid_sort_budget: None,
            residency: Default::default(),
            materialized: Default::default(),
            naive_overlaps: false,
        }
    }

    fn get() -> NewExpr<TOp> {
        NewExpr::Op(TOp::Get { table: "POSITION".into() }, vec![])
    }

    fn memo_of(tree: NewExpr<TOp>, rules: &[Box<dyn volcano::Rule<TangoSem>>]) -> Memo<TangoSem> {
        let mut memo = Memo::new(sem());
        memo.insert_root(tree);
        memo.explore(rules);
        memo
    }

    fn payrate() -> Expr {
        Expr::cmp(CmpOp::Gt, Expr::col("PayRate"), Expr::lit(Value::Double(10.0)))
    }

    #[test]
    fn merge_selects_collapses_stacks() {
        let tree = NewExpr::Op(
            TOp::Select { pred: payrate() },
            vec![NewExpr::Op(
                TOp::Select { pred: Expr::cmp(CmpOp::Lt, Expr::col("PosID"), Expr::lit(5)) },
                vec![get()],
            )],
        );
        let memo = memo_of(tree, &[Box::new(MergeSelects)]);
        // the top group must gain a merged-predicate Select directly over GET
        let fires: std::collections::HashMap<_, _> = memo.rule_fires().collect();
        assert_eq!(fires["G3-merge-selects"], 1);
        assert_eq!(memo.expr_count(), 4); // 3 original + 1 merged
    }

    #[test]
    fn commute_join_restores_layout() {
        let tree = NewExpr::Op(
            TOp::Join { eq: vec![("PosID".into(), "PosID".into())] },
            vec![get(), get()],
        );
        let memo = memo_of(tree, &[Box::new(CommuteJoin)]);
        // commuted form = Project over flipped Join; the projection's
        // output schema must equal the original join schema
        let root_group = memo.expr(volcano::ExprId(1)).group; // join expr
        let orig_schema = memo.props(root_group).schema.clone();
        let mut found_projected_commute = false;
        for &eid in memo.exprs_in(root_group) {
            let e = memo.expr(eid);
            if let TOp::Project { items } = &e.op {
                found_projected_commute = true;
                assert_eq!(items.len(), orig_schema.len());
                for (it, attr) in items.iter().zip(orig_schema.attrs()) {
                    assert!(it.alias.eq_ignore_ascii_case(&attr.name));
                }
            }
        }
        assert!(found_projected_commute, "commute must add π(⋈ flipped)");
    }

    #[test]
    fn window_push_guard_prevents_refiring() {
        let win_sel = Expr::and(
            Expr::cmp(CmpOp::Lt, Expr::col("T1"), Expr::lit(100)),
            Expr::cmp(CmpOp::Gt, Expr::col("T2"), Expr::lit(50)),
        );
        let tree = NewExpr::Op(
            TOp::Select { pred: win_sel },
            vec![NewExpr::Op(
                TOp::TJoin { eq: vec![("PosID".into(), "PosID".into())] },
                vec![get(), get()],
            )],
        );
        let memo = memo_of(tree, &[Box::new(TJoinWindowPush)]);
        let fires: std::collections::HashMap<_, _> = memo.rule_fires().collect();
        // fires exactly once; the guard stops the fixpoint loop
        assert_eq!(fires["G4-tjoin-window-push"], 1);
        assert!(memo.expr_count() < 12, "guard failed: {} exprs", memo.expr_count());
    }

    #[test]
    fn prune_taggr_input_projects_needed_columns() {
        let tree = NewExpr::Op(
            TOp::TAggr {
                group_by: vec!["PosID".into()],
                aggs: vec![tango_algebra::AggSpec::new(
                    tango_algebra::AggFunc::Count,
                    Some("PosID"),
                    "C",
                )],
            },
            vec![get()],
        );
        let memo = memo_of(tree, &[Box::new(PruneTAggrInput)]);
        // a Project [PosID, T1, T2] must have appeared below some TAggr
        let mut pruned = None;
        for i in 0..memo.expr_count() {
            if let TOp::Project { items } = &memo.expr(volcano::ExprId(i)).op {
                pruned = Some(items.len());
            }
        }
        assert_eq!(pruned, Some(3), "PayRate should be projected away");
    }

    #[test]
    fn rules_carry_their_equivalence_kind() {
        assert_eq!(Rule::<TangoSem>::kind(&MergeSelects), RuleKind::List);
        assert_eq!(Rule::<TangoSem>::kind(&CommuteJoin), RuleKind::Multiset);
        assert_eq!(Rule::<TangoSem>::kind(&TAggrWindowPush), RuleKind::Multiset);
        assert_eq!(Rule::<TangoSem>::kind(&TJoinWindowPush), RuleKind::List);
    }

    /// Middleware implementations only exist for operations the paper's
    /// Heuristic Group 1 allows to move (Get/Product have none).
    #[test]
    fn heuristic_group1_is_structural() {
        let s = sem();
        let props = GroupProps {
            schema: s.catalog["POSITION"].0.clone(),
            stats: s.catalog["POSITION"].1.clone(),
            signature: "GET[POSITION]()".into(),
        };
        use volcano::Semantics;
        let impls = s.implementations(
            &TOp::Get { table: "POSITION".into() },
            &[],
            &props,
            &crate::phys::Req::any(Site::Middleware),
        );
        assert!(impls.is_empty(), "base relations live in the DBMS");
        let impls = s.implementations(
            &TOp::Product,
            &[&props, &props],
            &props,
            &crate::phys::Req::any(Site::Middleware),
        );
        assert!(impls.is_empty(), "no special-purpose middleware product");
        let impls = s.implementations(
            &TOp::Coalesce,
            &[&props],
            &props,
            &crate::phys::Req::any(Site::Dbms),
        );
        assert!(impls.is_empty(), "coalescing is middleware-only");
    }
}
