//! The Statistics Collector (Figure 1): obtains statistics on base
//! relations and attributes from the DBMS catalog and provides them to
//! the optimizer.
//!
//! Faithful to the paper ("either by querying base relations or by
//! querying the statistics relations that exist in different formats in
//! the various DBMSs"), the collector issues plain SQL against the
//! mini-DBMS's Oracle-style dictionary views `USER_TABLES`,
//! `USER_TAB_COLUMNS` and `USER_HISTOGRAMS` — it uses no privileged API.

use crate::error::{Result, TangoError};
use crate::opt::Catalog;
use std::collections::HashMap;
use std::sync::Arc;
use tango_minidb::Connection;
use tango_stats::{AttrStats, Histogram, RelationStats};

/// Collect statistics for every ANALYZEd table. `use_histograms = false`
/// reproduces the paper's "optimizer without histograms on the time
/// attributes" configuration (Query 2's comparison).
pub fn collect(conn: &Connection, use_histograms: bool) -> Result<Catalog> {
    let mut catalog: Catalog = HashMap::new();

    let tables = conn
        .query_all("SELECT TABLE_NAME, NUM_ROWS, BLOCKS, AVG_ROW_LEN FROM USER_TABLES")
        .map_err(|e| TangoError::Dbms(e.to_string()))?;
    for row in tables.tuples() {
        let name = row[0].as_str().unwrap_or_default().to_uppercase();
        let stats = RelationStats {
            rows: row[1].as_f64().unwrap_or(0.0),
            blocks: row[2].as_int().unwrap_or(1) as u64,
            avg_tuple_bytes: row[3].as_f64().unwrap_or(8.0),
            ..Default::default()
        };
        let Some(schema) = conn.table_schema(&name) else {
            continue;
        };
        catalog.insert(name, (Arc::new(schema), stats));
    }

    let cols = conn
        .query_all(
            "SELECT TABLE_NAME, COLUMN_NAME, NUM_DISTINCT, LOW_VALUE, HIGH_VALUE, \
             NUM_NULLS, AVG_COL_LEN, INDEXED FROM USER_TAB_COLUMNS",
        )
        .map_err(|e| TangoError::Dbms(e.to_string()))?;
    for row in cols.tuples() {
        let t = row[0].as_str().unwrap_or_default().to_uppercase();
        if let Some((_, stats)) = catalog.get_mut(&t) {
            let col = row[1].as_str().unwrap_or_default().to_string();
            stats.set_attr(
                &col,
                AttrStats {
                    distinct: row[2].as_int().unwrap_or(0) as u64,
                    min: row[3].as_f64(),
                    max: row[4].as_f64(),
                    nulls: row[5].as_int().unwrap_or(0) as u64,
                    avg_width: row[6].as_f64().unwrap_or(8.0),
                    indexed: row[7].as_int().unwrap_or(0) != 0,
                    ..Default::default()
                },
            );
        }
    }

    if use_histograms {
        let hist = conn
            .query_all(
                "SELECT TABLE_NAME, COLUMN_NAME, ENDPOINT_NUMBER, ENDPOINT_VALUE \
                 FROM USER_HISTOGRAMS ORDER BY TABLE_NAME, COLUMN_NAME, ENDPOINT_NUMBER",
            )
            .map_err(|e| TangoError::Dbms(e.to_string()))?;
        let mut grouped: HashMap<(String, String), Vec<f64>> = HashMap::new();
        for row in hist.tuples() {
            let t = row[0].as_str().unwrap_or_default().to_uppercase();
            let c = row[1].as_str().unwrap_or_default().to_uppercase();
            if let Some(v) = row[3].as_f64() {
                grouped.entry((t, c)).or_default().push(v);
            }
        }
        for ((t, c), endpoints) in grouped {
            if endpoints.len() < 2 {
                continue;
            }
            if let Some((_, stats)) = catalog.get_mut(&t) {
                let values =
                    (stats.rows as u64).saturating_sub(stats.attr(&c).map_or(0, |a| a.nulls));
                if let Some(a) = stats.attrs.get_mut(&c) {
                    a.histogram = Some(Histogram { endpoints, values });
                }
            }
        }
    }

    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_minidb::Database;

    fn setup() -> Connection {
        let c = Connection::new(Database::in_memory());
        c.execute("CREATE TABLE POSITION (PosID INT, PayRate DOUBLE, T1 INT, T2 INT)").unwrap();
        c.execute(
            "INSERT INTO POSITION VALUES (1, 12.5, 2, 20), (1, 9.0, 5, 25), (2, 30.0, 5, 10), (3, 7.5, 1, 4)",
        )
        .unwrap();
        c.execute("CREATE INDEX IX ON POSITION (PosID)").unwrap();
        c.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
        c
    }

    #[test]
    fn collects_through_dictionary_views() {
        let conn = setup();
        let catalog = collect(&conn, true).unwrap();
        let (schema, stats) = &catalog["POSITION"];
        assert!(schema.is_temporal());
        assert_eq!(stats.rows, 4.0);
        assert_eq!(stats.attr("PosID").unwrap().distinct, 3);
        assert!(stats.attr("PosID").unwrap().indexed);
        assert_eq!(stats.attr("T1").unwrap().min, Some(1.0));
        assert_eq!(stats.attr("T2").unwrap().max, Some(25.0));
        assert!(stats.attr("T1").unwrap().has_histogram());
    }

    #[test]
    fn histograms_can_be_disabled() {
        let conn = setup();
        let catalog = collect(&conn, false).unwrap();
        let (_, stats) = &catalog["POSITION"];
        assert!(!stats.attr("T1").unwrap().has_histogram());
        assert_eq!(stats.attr("T1").unwrap().min, Some(1.0)); // min/max still there
    }

    #[test]
    fn unanalyzed_tables_are_absent() {
        let conn = setup();
        conn.execute("CREATE TABLE FRESH (A INT)").unwrap();
        let catalog = collect(&conn, true).unwrap();
        assert!(!catalog.contains_key("FRESH"));
    }
}
