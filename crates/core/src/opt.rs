//! The middleware optimizer: TANGO's instantiation of the generic
//! [`volcano`] optimizer generator.
//!
//! * Logical properties of an equivalence class: output schema +
//!   derived statistics ([`GroupProps`]).
//! * Physical properties: `(site, ordering)` ([`crate::phys::Req`]).
//! * Heuristic Group 1 of the paper — "move to the middleware only those
//!   operations that may be processed more efficiently there" — is
//!   embodied in the algorithm inventory: exactly the operations with
//!   efficient special-purpose middleware algorithms (temporal
//!   aggregation, joins, temporal joins, plus the order-preserving
//!   selection/projection that avoid needless transfers) have
//!   middleware implementations; everything else can only run in the
//!   DBMS.
//! * Heuristic Group 2 — "eliminate redundant operations" — is
//!   structural: transfers and sorts exist only as property *enforcers*,
//!   so `T^M(T^D(r))` pairs (rules T7/T8) and redundant sorts (rules
//!   T10–T12) cannot appear in winning plans.

use crate::cache::{self, Residency};
use crate::cost::CostFactors;
use crate::error::{Result, TangoError};
use crate::phys::{Algo, PhysNode, Req, Site, TOp};
use crate::rules;
use std::collections::HashMap;
use std::sync::Arc;
use tango_algebra::{Logical, Schema, SortKey, SortSpec};
use tango_stats::RelationStats;
use volcano::{Enforcer, Implementation, Memo, NewExpr, PhysPlan, SearchStats, Semantics};

/// Logical properties of an equivalence class.
#[derive(Debug, Clone)]
pub struct GroupProps {
    /// The class's output schema.
    pub schema: Arc<Schema>,
    /// Derived statistics for the class's output.
    pub stats: RelationStats,
    /// Canonical fragment signature of the class (see
    /// [`cache::top_signature`]); lets enforcers ask the middleware
    /// cache whether this fragment is already resident.
    pub signature: String,
}

/// Base-relation catalog snapshot fed by the Statistics Collector.
pub type Catalog = HashMap<String, (Arc<Schema>, RelationStats)>;

/// Optimizer feature switches (for the paper's comparisons and the
/// ablation studies).
#[derive(Debug, Clone, Copy)]
pub struct OptOptions {
    /// Enable the snapshot-preserving (but not list-exact) rule pushing a
    /// time-window selection below temporal aggregation — needed to reach
    /// the paper's Query 2 Plan 1 shape.
    pub approx_rules: bool,
    /// Enable the selection/projection pushdown rule groups 3/4.
    pub pushdown_rules: bool,
    /// Middleware sort-memory budget in bytes. When the estimated sort
    /// input exceeds it, the order enforcer becomes the external merge
    /// sort `XSORT^M` instead of the in-memory `SORT^M`. `None` (the
    /// default) means unbounded memory, i.e. always sort in memory.
    pub mid_sort_budget: Option<u64>,
    /// Mid-query re-optimization trigger: when the actual row count at a
    /// pipeline breaker diverges from the estimate by at least this
    /// ratio (in either direction), the engine re-optimizes the
    /// unexecuted remainder of the plan over the materialized actuals.
    /// `None` disables adaptivity entirely.
    pub replan_ratio: Option<f64>,
    /// Use the naive independent-conjunct estimate for `Overlaps`-style
    /// temporal predicates instead of the joint Section 3.3 estimator —
    /// deliberately reproducing the ~40× misestimate, to seed the
    /// adaptivity tests and benchmarks with a plausibly-bad plan.
    pub naive_overlaps: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            approx_rules: true,
            pushdown_rules: true,
            mid_sort_budget: None,
            replan_ratio: Some(8.0),
            naive_overlaps: false,
        }
    }
}

/// The Volcano semantics for TANGO.
pub struct TangoSem {
    /// Base-relation statistics snapshot.
    pub catalog: Catalog,
    /// Cost factors used by the implementations' formulas.
    pub factors: CostFactors,
    /// Middleware sort-memory budget (see [`OptOptions::mid_sort_budget`]).
    pub mid_sort_budget: Option<u64>,
    /// Snapshot of the middleware relation cache taken when optimization
    /// started: which fragment signatures are resident, in which orders.
    /// A `TRANSFER^M` over a resident fragment is priced at
    /// [`CostFactors::p_cached`] per byte instead of the wire rate
    /// [`CostFactors::p_tm`] — cheap enough to flip join-side placement
    /// (the Figure 10 "one argument already resides" scenario), while
    /// staying strictly positive so transfers are never free.
    pub residency: Residency,
    /// Mid-query materialized intermediates available to this run, by
    /// name (normally `#MATn`), with the order each was materialized in.
    /// A `Get` over one of these becomes `MATSCAN^M` at the middleware
    /// (delivering the stored order for free) and is *excluded* from
    /// `SCAN^D` — the DBMS has no such table. Empty outside mid-query
    /// re-optimization.
    pub materialized: HashMap<String, SortSpec>,
    /// Estimation mode (see [`OptOptions::naive_overlaps`]).
    pub naive_overlaps: bool,
}

impl TangoSem {
    fn table(&self, name: &str) -> Option<&(Arc<Schema>, RelationStats)> {
        self.catalog.get(&name.to_uppercase())
    }

    fn mat_order(&self, name: &str) -> Option<&SortSpec> {
        self.materialized.get(&name.to_uppercase())
    }

    /// Order produced by `TAGGR^M`: grouping attributes then `T1`.
    fn taggr_order(group_by: &[String]) -> SortSpec {
        let mut cols: Vec<String> = group_by.to_vec();
        cols.push("T1".to_string());
        SortSpec::by(cols)
    }

    /// Pick the middleware sort enforcer for the given input: in-memory
    /// `SORT^M` normally, the external merge sort `XSORT^M` when the
    /// estimated input exceeds the configured sort-memory budget. The
    /// run size is however many rows fit in the budget.
    fn mid_sort(&self, props: &GroupProps, order: SortSpec) -> Algo {
        match self.mid_sort_budget {
            Some(b) if props.stats.size_bytes() > b as f64 => {
                let width = props.stats.avg_tuple_bytes.max(1.0);
                let run_rows = ((b as f64 / width) as usize).max(2);
                Algo::SortXM(order, run_rows)
            }
            _ => Algo::SortM(order),
        }
    }

    /// Order a coalesce/diff requires: all value attributes then `T1`.
    fn value_order(schema: &Schema) -> SortSpec {
        let period = schema.period();
        let mut cols: Vec<String> = schema
            .attrs()
            .iter()
            .enumerate()
            .filter(|(i, _)| period.is_none_or(|(a, b)| *i != a && *i != b))
            .map(|(_, a)| a.name.clone())
            .collect();
        cols.push("T1".to_string());
        SortSpec::by(cols)
    }
}

impl Semantics for TangoSem {
    type Op = TOp;
    type Props = GroupProps;
    type PhysProps = Req;
    type Algo = Algo;

    fn derive_props(&self, op: &TOp, children: &[&GroupProps]) -> GroupProps {
        let child_schemas: Vec<&Schema> = children.iter().map(|p| p.schema.as_ref()).collect();
        let schema = op
            .output_schema(&child_schemas, &|t| self.table(t).map(|(s, _)| s.as_ref().clone()))
            .unwrap_or_else(|_| Schema::new(vec![]));
        let stats = match op {
            TOp::Get { table } => {
                self.table(table).map(|(_, s)| s.clone()).unwrap_or_else(|| RelationStats {
                    rows: 1000.0,
                    avg_tuple_bytes: schema.est_tuple_bytes() as f64,
                    ..Default::default()
                })
            }
            _ => {
                let child_stats: Vec<&RelationStats> = children.iter().map(|p| &p.stats).collect();
                tango_stats::derive_stats_with(
                    &op.as_logical(),
                    &child_stats,
                    &child_schemas,
                    &schema,
                    self.naive_overlaps,
                )
            }
        };
        let child_sigs: Vec<String> = children.iter().map(|p| p.signature.clone()).collect();
        let signature = cache::top_signature(op, &child_sigs);
        GroupProps { schema: Arc::new(schema), stats, signature }
    }

    fn implementations(
        &self,
        op: &TOp,
        child_props: &[&GroupProps],
        props: &GroupProps,
        required: &Req,
    ) -> Vec<Implementation<Self>> {
        let mut out = Vec::new();
        let cost = |algo: &Algo| {
            let inputs: Vec<&RelationStats> = child_props.iter().map(|p| &p.stats).collect();
            self.factors.cost(algo, &inputs, &props.stats)
        };
        match required.site {
            // ---------------- DBMS-side generic algorithms ------------
            // None of them guarantees an output order; `SORT^D` is the
            // only way to deliver order at the DBMS (as enforcer).
            Site::Dbms => {
                if !required.order.is_none() {
                    return out;
                }
                let dbms = Req::any(Site::Dbms);
                match op {
                    TOp::Get { table } => {
                        // mid-query materializations live only in the
                        // middleware — the DBMS has no table to scan
                        if self.table(table).is_some() && self.mat_order(table).is_none() {
                            let algo = Algo::ScanD(table.clone());
                            // scan cost is over its own output
                            let c = self.factors.cost(&algo, &[&props.stats], &props.stats);
                            out.push(Implementation { algo, child_required: vec![], cost: c });
                        }
                    }
                    TOp::Select { pred } => {
                        let algo = Algo::FilterD(pred.clone());
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![dbms],
                        });
                    }
                    TOp::Project { items } => {
                        let algo = Algo::ProjectD(items.clone());
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![dbms],
                        });
                    }
                    TOp::Join { eq } => {
                        let algo = Algo::JoinD(eq.clone());
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![dbms.clone(), dbms],
                        });
                    }
                    TOp::TJoin { eq } => {
                        let algo = Algo::TJoinD(eq.clone());
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![dbms.clone(), dbms],
                        });
                    }
                    TOp::Product => {
                        let algo = Algo::ProductD;
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![dbms.clone(), dbms],
                        });
                    }
                    TOp::TAggr { group_by, aggs } => {
                        let algo = Algo::TAggrD { group_by: group_by.clone(), aggs: aggs.clone() };
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![dbms],
                        });
                    }
                    TOp::DupElim => {
                        let algo = Algo::DupElimD;
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![dbms],
                        });
                    }
                    // no SQL implementation for coalescing / temporal
                    // difference in the generic dialect: middleware only
                    TOp::Coalesce | TOp::Diff => {}
                }
            }
            // ---------------- middleware (XXL) algorithms -------------
            Site::Middleware => match op {
                // base relations live in the DBMS; reachable only via the
                // TRANSFER^M enforcer. Mid-query materializations are the
                // exception: they already sit in middleware memory, in
                // the order they were drained in.
                TOp::Get { table } => {
                    if let Some(stored) = self.mat_order(table) {
                        if stored.satisfies(&required.order) {
                            let algo = Algo::MatScanM(table.clone());
                            let c = self.factors.cost(&algo, &[], &props.stats);
                            out.push(Implementation { algo, child_required: vec![], cost: c });
                        }
                    }
                }
                TOp::Select { pred } => {
                    // FILTER^M is order-preserving: pass the requirement
                    // through to the child (rule-E4 behaviour).
                    let algo = Algo::FilterM(pred.clone());
                    out.push(Implementation {
                        cost: cost(&algo),
                        algo,
                        child_required: vec![Req::mid(required.order.clone())],
                    });
                }
                TOp::Project { items } => {
                    // order-preserving when every required key is a plain
                    // column the projection passes through (precondition
                    // of rule E5). The requirement names *output* columns,
                    // so remap each key through its item's alias before
                    // pushing it below the projection; a key fed by a
                    // computed item cannot be sorted early.
                    let mapped: Option<Vec<SortKey>> = required
                        .order
                        .keys()
                        .iter()
                        .map(|k| {
                            let item =
                                items.iter().find(|it| it.alias.eq_ignore_ascii_case(&k.col))?;
                            match &item.expr {
                                tango_algebra::Expr::Col { name, .. } => {
                                    Some(SortKey { col: name.clone(), desc: k.desc })
                                }
                                _ => None,
                            }
                        })
                        .collect();
                    if let Some(keys) = mapped {
                        let algo = Algo::ProjectM(items.clone());
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![Req::mid(SortSpec(keys))],
                        });
                    }
                }
                TOp::Join { eq } => {
                    let lorder = SortSpec::by(eq.iter().map(|(l, _)| l.clone()));
                    let rorder = SortSpec::by(eq.iter().map(|(_, r)| r.clone()));
                    // sort-merge join output is ordered by the left join
                    // attributes
                    if lorder.satisfies(&required.order) {
                        let algo = Algo::MergeJoinM(eq.clone());
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![Req::mid(lorder), Req::mid(rorder)],
                        });
                    }
                }
                TOp::TJoin { eq } => {
                    let lorder = SortSpec::by(eq.iter().map(|(l, _)| l.clone()));
                    let rorder = SortSpec::by(eq.iter().map(|(_, r)| r.clone()));
                    if lorder.satisfies(&required.order) {
                        let algo = Algo::TMergeJoinM(eq.clone());
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![Req::mid(lorder), Req::mid(rorder)],
                        });
                    }
                }
                // no special-purpose middleware Cartesian product: the
                // DBMS handles products (heuristic group 1)
                TOp::Product => {}
                TOp::TAggr { group_by, aggs } => {
                    let in_order = Self::taggr_order(group_by);
                    let out_order = Self::taggr_order(group_by);
                    if out_order.satisfies(&required.order) {
                        let algo = Algo::TAggrM { group_by: group_by.clone(), aggs: aggs.clone() };
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![Req::mid(in_order)],
                        });
                    }
                }
                TOp::DupElim => {
                    // hash-based, keeps first occurrences: order-preserving
                    let algo = Algo::DupElimM;
                    out.push(Implementation {
                        cost: cost(&algo),
                        algo,
                        child_required: vec![Req::mid(required.order.clone())],
                    });
                }
                TOp::Coalesce => {
                    let order = Self::value_order(&props.schema);
                    if order.satisfies(&required.order) {
                        let algo = Algo::CoalesceM;
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![Req::mid(order)],
                        });
                    }
                }
                TOp::Diff => {
                    let order = Self::value_order(&props.schema);
                    if order.satisfies(&required.order) {
                        let algo = Algo::TDiffM;
                        out.push(Implementation {
                            cost: cost(&algo),
                            algo,
                            child_required: vec![Req::mid(order.clone()), Req::mid(order)],
                        });
                    }
                }
            },
        }
        out
    }

    fn enforcers(&self, props: &GroupProps, required: &Req) -> Vec<Enforcer<Self>> {
        let mut out = Vec::new();
        let stats = [&props.stats];
        // sorting enforces order at either site
        if !required.order.is_none() {
            let algo = match required.site {
                Site::Middleware => self.mid_sort(props, required.order.clone()),
                Site::Dbms => Algo::SortD(required.order.clone()),
            };
            out.push(Enforcer {
                cost: self.factors.cost(&algo, &stats, &props.stats),
                algo,
                inner_required: Req::any(required.site),
            });
        }
        match required.site {
            Site::Middleware => {
                // T^M preserves order (rule T6, type →_L): ask the DBMS
                // side for the same order (SORT^D below, as in Query 1's
                // Plan 1). When the fragment is already resident in the
                // middleware cache (in a satisfying order), the transfer
                // ships no bytes — price it as a memory scan of the
                // cached copy instead of a wire transfer; a stale-but-
                // delta-covered copy additionally pays its refresh (delta
                // wire + merge CPU, see `cache::refresh_cost_us`). The
                // estimate is conservative: the fragment below is still
                // costed as if it ran, so residency can only *shrink* a
                // plan's cost.
                let full = self.factors.cost(&Algo::TransferM, &stats, &props.stats);
                let cost = self
                    .residency
                    .transfer_cost(&props.signature, &required.order, &self.factors)
                    .map_or(full, |c| c.min(full));
                out.push(Enforcer {
                    cost,
                    algo: Algo::TransferM,
                    inner_required: Req::dbms(required.order.clone()),
                });
            }
            Site::Dbms => {
                // T^D loads into an (unordered) table: only useful when no
                // order is required.
                if required.order.is_none() {
                    out.push(Enforcer {
                        cost: self.factors.cost(&Algo::TransferD, &stats, &props.stats),
                        algo: Algo::TransferD,
                        inner_required: Req::any(Site::Middleware),
                    });
                }
            }
        }
        out
    }
}

/// Convert a parser-produced [`Logical`] tree into the memo form,
/// stripping the top `T^M` and top-level sorts into required properties
/// (site = middleware, the recorded ordering).
pub fn to_initial(logical: &Logical) -> Result<(NewExpr<TOp>, SortSpec)> {
    let mut node = logical;
    let mut order = SortSpec::none();
    loop {
        match node {
            Logical::TransferM { input } | Logical::TransferD { input } => node = input,
            Logical::Sort { keys, input } => {
                if order.is_none() {
                    order = keys.clone();
                }
                node = input;
            }
            _ => break,
        }
    }
    Ok((convert(node)?, order))
}

fn convert(l: &Logical) -> Result<NewExpr<TOp>> {
    let kids: Vec<NewExpr<TOp>> = l.children().into_iter().map(convert).collect::<Result<_>>()?;
    Ok(match l {
        // transfers and inner sorts are physical concerns: drop them
        Logical::TransferM { .. } | Logical::TransferD { .. } | Logical::Sort { .. } => kids
            .into_iter()
            .next()
            .ok_or_else(|| TangoError::Optimizer("sort/transfer without input".into()))?,
        Logical::Get { table } => NewExpr::Op(TOp::Get { table: table.clone() }, vec![]),
        Logical::Select { pred, .. } => NewExpr::Op(TOp::Select { pred: pred.clone() }, kids),
        Logical::Project { items, .. } => NewExpr::Op(TOp::Project { items: items.clone() }, kids),
        Logical::Join { eq, .. } => NewExpr::Op(TOp::Join { eq: eq.clone() }, kids),
        Logical::TJoin { eq, .. } => NewExpr::Op(TOp::TJoin { eq: eq.clone() }, kids),
        Logical::Product { .. } => NewExpr::Op(TOp::Product, kids),
        Logical::TAggr { group_by, aggs, .. } => {
            NewExpr::Op(TOp::TAggr { group_by: group_by.clone(), aggs: aggs.clone() }, kids)
        }
        Logical::DupElim { .. } => NewExpr::Op(TOp::DupElim, kids),
        Logical::Coalesce { .. } => NewExpr::Op(TOp::Coalesce, kids),
        Logical::Diff { .. } => NewExpr::Op(TOp::Diff, kids),
    })
}

/// The result of one optimization run.
pub struct Optimized {
    /// The winning physical plan.
    pub plan: PhysNode,
    /// Its estimated cost in µs.
    pub cost: f64,
    /// Equivalence classes generated (the paper's per-query metric).
    pub classes: usize,
    /// Class elements generated.
    pub elements: usize,
    /// Search-effort accounting from the Volcano phase.
    pub search: SearchStats,
    /// Per-rule firing counts from the transformation phase.
    pub rule_fires: Vec<(&'static str, usize)>,
}

/// Optimize a logical plan against a catalog snapshot, with nothing
/// resident in the middleware ([`optimize_resident`] with an empty
/// [`Residency`]).
pub fn optimize_logical(
    logical: &Logical,
    catalog: Catalog,
    factors: CostFactors,
    options: OptOptions,
) -> Result<Optimized> {
    optimize_resident(logical, catalog, factors, options, Residency::default())
}

/// Optimize a logical plan against a catalog snapshot *and* a snapshot
/// of what the middleware relation cache holds. Residency only changes
/// `TRANSFER^M` enforcer pricing — plan correctness never depends on the
/// snapshot being current (a stale hit simply re-fetches at runtime).
pub fn optimize_resident(
    logical: &Logical,
    catalog: Catalog,
    factors: CostFactors,
    options: OptOptions,
    residency: Residency,
) -> Result<Optimized> {
    optimize_with(logical, None, catalog, factors, options, residency, HashMap::new())
}

/// Mid-query re-optimization entry point: optimize the unexecuted
/// *remainder* of a running plan, where some inputs are already
/// materialized in the middleware.
///
/// `root_order` pins the delivery order the original plan guaranteed (so
/// the spliced plan returns byte-identical results); `materialized` names
/// the available mid-query materializations and the order each holds,
/// and `catalog` must contain their schemas and *actual* (observed)
/// statistics alongside the base tables.
pub fn reoptimize(
    logical: &Logical,
    root_order: SortSpec,
    catalog: Catalog,
    factors: CostFactors,
    options: OptOptions,
    residency: Residency,
    materialized: HashMap<String, SortSpec>,
) -> Result<Optimized> {
    optimize_with(logical, Some(root_order), catalog, factors, options, residency, materialized)
}

#[allow(clippy::too_many_arguments)]
fn optimize_with(
    logical: &Logical,
    pinned_order: Option<SortSpec>,
    catalog: Catalog,
    factors: CostFactors,
    options: OptOptions,
    residency: Residency,
    materialized: HashMap<String, SortSpec>,
) -> Result<Optimized> {
    let (tree, order) = to_initial(logical)?;
    let order = pinned_order.unwrap_or(order);
    let materialized =
        materialized.into_iter().map(|(k, v)| (k.to_uppercase(), v)).collect::<HashMap<_, _>>();
    let sem = TangoSem {
        catalog,
        factors,
        mid_sort_budget: options.mid_sort_budget,
        residency,
        materialized,
        naive_overlaps: options.naive_overlaps,
    };
    let mut memo = Memo::new(sem);
    let root = memo.insert_root(tree);
    memo.explore(&rules::rule_set(options));
    let mut search = SearchStats::default();
    let best = volcano::optimize(&memo, root, Req::mid(order), &mut search)
        .ok_or_else(|| TangoError::Optimizer("no feasible plan".into()))?;
    let plan = annotate(&best.plan, &memo)?;
    Ok(Optimized {
        plan,
        cost: best.cost,
        classes: memo.group_count(),
        elements: memo.expr_count(),
        search,
        rule_fires: memo.rule_fires().collect(),
    })
}

/// Attach output schemas to a physical plan by bottom-up derivation.
fn annotate(plan: &PhysPlan<Algo>, memo: &Memo<TangoSem>) -> Result<PhysNode> {
    fn go(p: &PhysPlan<Algo>, sem: &TangoSem) -> Result<PhysNode> {
        let children: Vec<PhysNode> =
            p.children.iter().map(|c| go(c, sem)).collect::<Result<_>>()?;
        let schema = match &p.algo {
            Algo::ScanD(t) | Algo::MatScanM(t) => sem
                .table(t)
                .map(|(s, _)| s.clone())
                .ok_or_else(|| TangoError::Optimizer(format!("unknown table {t}")))?,
            other => {
                let kids: Vec<&Schema> = children.iter().map(|c| c.schema.as_ref()).collect();
                Arc::new(other.output_schema(&kids)?)
            }
        };
        Ok(PhysNode { algo: p.algo.clone(), schema, children })
    }
    go(plan, memo.semantics())
}
