//! # tango-stats
//!
//! Statistics and selectivity estimation for the TANGO middleware
//! (Section 3 of the paper).
//!
//! The middleware only uses *standard* statistics maintainable by any
//! conventional DBMS: block counts, tuple counts, average tuple sizes;
//! per-attribute minimum/maximum values, distinct counts, histograms and
//! index availability. On top of these, this crate provides:
//!
//! * [`temporal_sel`] — the `StartBefore`/`EndBefore` estimators for
//!   temporal predicates (overlaps, timeslice) that fix the ~40×
//!   overestimate of the naive independent-predicate approach (the worked
//!   example of Section 3.3 is a unit test here),
//! * [`std_sel`] — conventional selectivity estimation (uniform between
//!   min and max, or histogram buckets) for non-temporal predicates,
//! * [`cardinality`] — result-cardinality derivation for every TANGO
//!   operator, including the temporal-aggregation bounds and 60 % rule of
//!   Section 3.4.

pub mod cardinality;
pub mod histogram;
pub mod stats;
pub mod std_sel;
pub mod temporal_sel;

pub use cardinality::{derive_stats, derive_stats_with};
pub use histogram::Histogram;
pub use stats::{AttrStats, RelationStats};
pub use temporal_sel::{end_before, overlaps_cardinality, start_before, timeslice_cardinality};
