//! Temporal selectivity estimation — Section 3.3 of the paper.
//!
//! Conventional DBMSs treat `T1`/`T2` like any other attributes and
//! estimate the two halves of an `Overlaps` predicate independently,
//! which the paper shows to be off by a factor of ~40. The fix is a piece
//! of semantic query optimization: *the end of a period never precedes
//! its start*, so the number of tuples overlapping `[A, B)` is
//!
//! ```text
//! StartBefore(B, r) - EndBefore(A + 1, r)
//! ```
//!
//! with both functions computable from ordinary min/max statistics or,
//! when available, histograms on the time attributes.

use crate::stats::RelationStats;

/// Number of tuples with `attr < a`, estimated from min/max under a
/// uniform assumption, or from the histogram when one exists. This single
/// function implements both `StartBefore` (over `T1`) and `EndBefore`
/// (over `T2`) from the paper.
fn values_before(a: f64, stats: &RelationStats, attr: &str) -> f64 {
    let Some(ast) = stats.attr(attr) else {
        return stats.rows / 2.0; // nothing known: coin flip
    };
    if let Some(h) = &ast.histogram {
        if h.values > 0 {
            return h.values_below(a) / h.values as f64 * stats.rows;
        }
    }
    let (min, max) = (ast.min_val(), ast.max_val());
    if max <= min {
        return if a > min { stats.rows } else { 0.0 };
    }
    (((a - min) / (max - min)) * stats.rows).clamp(0.0, stats.rows)
}

/// `StartBefore(A, r)`: estimated number of tuples whose period starts
/// before `a` (`T1 < a`).
pub fn start_before(a: f64, stats: &RelationStats, t1: &str) -> f64 {
    values_before(a, stats, t1)
}

/// `EndBefore(A, r)`: estimated number of tuples whose period ends before
/// `a` (`T2 < a`).
pub fn end_before(a: f64, stats: &RelationStats, t2: &str) -> f64 {
    values_before(a, stats, t2)
}

/// Result cardinality of `Overlaps(A, B)` — the predicate
/// `T1 < B AND T2 > A` — using the paper's semantic estimator:
/// `StartBefore(B, r) - EndBefore(A + 1, r)`.
pub fn overlaps_cardinality(a: f64, b: f64, stats: &RelationStats, t1: &str, t2: &str) -> f64 {
    let est = start_before(b, stats, t1) - end_before(a + 1.0, stats, t2);
    est.clamp(0.0, stats.rows)
}

/// Result cardinality of the timeslice predicate `T1 <= A AND T2 > A`:
/// `StartBefore(A + 1, r) - EndBefore(A + 1, r)`.
pub fn timeslice_cardinality(a: f64, stats: &RelationStats, t1: &str, t2: &str) -> f64 {
    let est = start_before(a + 1.0, stats, t1) - end_before(a + 1.0, stats, t2);
    est.clamp(0.0, stats.rows)
}

/// The *naive* estimator current DBMSs effectively use: treat the two
/// predicates of `Overlaps` as independent selections and multiply their
/// selectivities. Kept for the Section 3.3 comparison experiment.
pub fn naive_overlaps_cardinality(
    a: f64,
    b: f64,
    stats: &RelationStats,
    t1: &str,
    t2: &str,
) -> f64 {
    if stats.rows <= 0.0 {
        return 0.0;
    }
    let sel1 = start_before(b, stats, t1) / stats.rows; // T1 < B
    let sel2 = 1.0 - end_before(a, stats, t2) / stats.rows - // T2 > A
        0.0;
    (sel1 * sel2 * stats.rows).clamp(0.0, stats.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AttrStats;
    use tango_algebra::date::day;

    /// The worked example of Section 3.3: 100,000 tuples, 7-day periods
    /// uniformly distributed over 1995-01-01 .. 2000-01-01. T1 spans 1819
    /// distinct day values; the query is Overlaps(1997-02-01, 1997-02-08).
    fn paper_relation() -> RelationStats {
        let mut s = RelationStats { rows: 100_000.0, ..Default::default() };
        s.set_attr(
            "T1",
            AttrStats {
                min: Some(day(1995, 1, 1) as f64),
                max: Some(day(1999, 12, 25) as f64),
                distinct: 1819,
                ..Default::default()
            },
        );
        s.set_attr(
            "T2",
            AttrStats {
                min: Some(day(1995, 1, 8) as f64),
                max: Some(day(2000, 1, 1) as f64),
                distinct: 1819,
                ..Default::default()
            },
        );
        s
    }

    #[test]
    fn section_3_3_worked_example() {
        let s = paper_relation();
        let a = day(1997, 2, 1) as f64;
        let b = day(1997, 2, 8) as f64;

        // Naive estimate: ~24.7% of the relation — a factor of ~40 too high.
        let naive = naive_overlaps_cardinality(a, b, &s, "T1", "T2");
        let naive_sel = naive / s.rows;
        assert!(
            (0.22..0.28).contains(&naive_sel),
            "naive selectivity should be ~24.7%, got {naive_sel}"
        );

        // Proposed estimate: ~0.7-0.8% of the relation.
        let proposed = overlaps_cardinality(a, b, &s, "T1", "T2");
        let proposed_sel = proposed / s.rows;
        assert!(
            (0.004..0.010).contains(&proposed_sel),
            "proposed selectivity should be ~0.8%, got {proposed_sel}"
        );

        // "This is a factor of 40 too high": actual is 0.4%-0.8%; take the
        // middle of the paper's actual band (~0.6%) as truth.
        let actual = 0.006 * s.rows;
        assert!(naive / actual > 25.0, "naive should be way off");
        assert!(proposed / actual < 2.0, "proposed should be close");
    }

    #[test]
    fn start_before_components_match_paper() {
        let s = paper_relation();
        // First predicate (T1 < 1997-02-08): 769/1819 = 42.3% of the relation.
        let sb = start_before(day(1997, 2, 8) as f64, &s, "T1") / s.rows;
        assert!((sb - 769.0 / 1819.0).abs() < 0.002, "got {sb}");
    }

    #[test]
    fn timeslice_estimate() {
        let s = paper_relation();
        // A timeslice at any interior day should catch ~7 days worth of
        // starts: 7/1819 of the relation (~385 tuples).
        let est = timeslice_cardinality(day(1997, 6, 1) as f64, &s, "T1", "T2");
        assert!((300.0..500.0).contains(&est), "got {est}");
    }

    #[test]
    fn clamping() {
        let s = paper_relation();
        // window entirely before the data
        let est =
            overlaps_cardinality(day(1990, 1, 1) as f64, day(1991, 1, 1) as f64, &s, "T1", "T2");
        assert_eq!(est, 0.0);
        // window covering everything
        let est =
            overlaps_cardinality(day(1990, 1, 1) as f64, day(2005, 1, 1) as f64, &s, "T1", "T2");
        assert_eq!(est, s.rows);
    }

    #[test]
    fn histogram_beats_uniform_on_skew() {
        // 90% of periods start in 1995, 10% in 1999 (like POSITION's skew
        // towards recent years, just inverted).
        let mut t1_vals: Vec<f64> = Vec::new();
        for i in 0..9000 {
            t1_vals.push((day(1995, 1, 1) + (i % 365)) as f64);
        }
        for i in 0..1000 {
            t1_vals.push((day(1999, 1, 1) + (i % 365)) as f64);
        }
        let t2_vals: Vec<f64> = t1_vals.iter().map(|v| v + 30.0).collect();
        let mut s = RelationStats { rows: 10_000.0, ..Default::default() };
        let mk = |vals: &[f64], hist: bool| AttrStats {
            min: vals.iter().copied().reduce(f64::min),
            max: vals.iter().copied().reduce(f64::max),
            distinct: 365,
            histogram: hist.then(|| crate::histogram::Histogram::build(vals.to_vec(), 20).unwrap()),
            ..Default::default()
        };
        let truth = t1_vals
            .iter()
            .zip(&t2_vals)
            .filter(|&(&a, &b)| a < day(1996, 7, 1) as f64 && b > day(1996, 1, 1) as f64)
            .count() as f64;

        s.set_attr("T1", mk(&t1_vals, false));
        s.set_attr("T2", mk(&t2_vals, false));
        let uniform_est =
            overlaps_cardinality(day(1996, 1, 1) as f64, day(1996, 7, 1) as f64, &s, "T1", "T2");

        s.set_attr("T1", mk(&t1_vals, true));
        s.set_attr("T2", mk(&t2_vals, true));
        let hist_est =
            overlaps_cardinality(day(1996, 1, 1) as f64, day(1996, 7, 1) as f64, &s, "T1", "T2");

        assert!(
            (hist_est - truth).abs() < (uniform_est - truth).abs(),
            "histograms should improve the estimate: truth={truth} uniform={uniform_est} hist={hist_est}"
        );
    }
}
