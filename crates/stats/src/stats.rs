//! Relation- and attribute-level statistics.
//!
//! Exactly the "standard statistics" of Section 3: block counts, tuple
//! counts, average tuple sizes for relations; minimum/maximum values,
//! distinct counts, histograms, and index availability for attributes;
//! clustering for indexes.

use crate::histogram::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tango_algebra::{Schema, Value};

/// Statistics for one attribute.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AttrStats {
    /// Minimum value (numeric view; `None` if all-null or non-numeric).
    pub min: Option<f64>,
    /// Maximum value (numeric view).
    pub max: Option<f64>,
    /// Number of distinct (non-null) values.
    pub distinct: u64,
    /// Number of nulls.
    pub nulls: u64,
    /// Height-balanced histogram, when collected.
    pub histogram: Option<Histogram>,
    /// Average stored width of this attribute in bytes.
    pub avg_width: f64,
    /// Is there an index on this attribute?
    pub indexed: bool,
    /// Is that index clustering (rows stored in index order)?
    pub clustered: bool,
}

impl AttrStats {
    /// `minVal(A, r)` of the paper.
    pub fn min_val(&self) -> f64 {
        self.min.unwrap_or(0.0)
    }

    /// `maxVal(A, r)` of the paper.
    pub fn max_val(&self) -> f64 {
        self.max.unwrap_or(0.0)
    }

    /// `hasHistogram(A, r)` of the paper.
    pub fn has_histogram(&self) -> bool {
        self.histogram.is_some()
    }
}

/// Statistics for one relation (base or derived).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RelationStats {
    /// `cardinality(r)`.
    pub rows: f64,
    /// Disk blocks occupied (base relations).
    pub blocks: u64,
    /// Average tuple size in bytes.
    pub avg_tuple_bytes: f64,
    /// Per-attribute statistics keyed by (case-normalized bare) name.
    pub attrs: BTreeMap<String, AttrStats>,
}

impl RelationStats {
    /// `size(r)` of the cost formulas: cardinality × average tuple size.
    pub fn size_bytes(&self) -> f64 {
        self.rows * self.avg_tuple_bytes
    }

    /// Look up attribute statistics by (possibly qualified) name.
    pub fn attr(&self, name: &str) -> Option<&AttrStats> {
        let bare = name.rsplit('.').next().unwrap_or(name).to_uppercase();
        self.attrs.get(&bare)
    }

    pub fn set_attr(&mut self, name: &str, stats: AttrStats) {
        let bare = name.rsplit('.').next().unwrap_or(name).to_uppercase();
        self.attrs.insert(bare, stats);
    }

    /// `distinct(A, r)`, defaulting to a tenth of the rows when unknown
    /// (the usual textbook default).
    pub fn distinct(&self, name: &str) -> f64 {
        match self.attr(name) {
            Some(a) if a.distinct > 0 => a.distinct as f64,
            _ => (self.rows / 10.0).max(1.0),
        }
    }

    /// Compute full statistics from a materialized column sample. Used by
    /// the mini-DBMS's ANALYZE and by tests.
    pub fn from_relation(rel: &tango_algebra::Relation, histogram_buckets: usize) -> Self {
        let schema: &Schema = rel.schema();
        let mut s = RelationStats {
            rows: rel.len() as f64,
            blocks: (rel.byte_size() as u64).div_ceil(8192).max(1),
            avg_tuple_bytes: rel.avg_tuple_bytes(),
            attrs: BTreeMap::new(),
        };
        for (i, attr) in schema.attrs().iter().enumerate() {
            let col: Vec<&Value> = rel.tuples().iter().map(|t| &t[i]).collect();
            let nums: Vec<f64> = col.iter().filter_map(|v| v.as_f64()).collect();
            let nulls = col.iter().filter(|v| v.is_null()).count() as u64;
            let mut keys: Vec<_> = col.iter().filter(|v| !v.is_null()).map(|v| v.key()).collect();
            keys.sort();
            keys.dedup();
            let histogram = if histogram_buckets > 0 && !nums.is_empty() {
                Histogram::build(nums.clone(), histogram_buckets)
            } else {
                None
            };
            let width_sum: usize = col.iter().map(|v| v.byte_size()).sum();
            s.set_attr(
                &attr.name,
                AttrStats {
                    min: nums.iter().copied().reduce(f64::min),
                    max: nums.iter().copied().reduce(f64::max),
                    distinct: keys.len() as u64,
                    nulls,
                    histogram,
                    avg_width: if col.is_empty() {
                        8.0
                    } else {
                        width_sum as f64 / col.len() as f64
                    },
                    indexed: false,
                    clustered: false,
                },
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tango_algebra::{tup, Attr, Relation, Schema, Type};

    #[test]
    fn from_relation_basics() {
        let schema =
            Arc::new(Schema::new(vec![Attr::new("A", Type::Int), Attr::new("S", Type::Str)]));
        let rel =
            Relation::new(schema, vec![tup![1, "x"], tup![2, "y"], tup![2, "y"], tup![5, "z"]]);
        let s = RelationStats::from_relation(&rel, 4);
        assert_eq!(s.rows, 4.0);
        let a = s.attr("A").unwrap();
        assert_eq!(a.min, Some(1.0));
        assert_eq!(a.max, Some(5.0));
        assert_eq!(a.distinct, 3);
        assert!(a.has_histogram());
        let str_attr = s.attr("S").unwrap();
        assert_eq!(str_attr.distinct, 3);
        assert!(!str_attr.has_histogram()); // strings are not histogrammed
        assert!(s.size_bytes() > 0.0);
    }

    #[test]
    fn qualified_lookup() {
        let mut s = RelationStats::default();
        s.set_attr("P.PosID", AttrStats { distinct: 7, ..Default::default() });
        assert_eq!(s.attr("posid").unwrap().distinct, 7);
        assert_eq!(s.attr("X.POSID").unwrap().distinct, 7);
    }
}
