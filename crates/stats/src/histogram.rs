//! Height-balanced histograms (the kind Oracle maintains and the paper's
//! formulas consume).
//!
//! A histogram over `n` buckets stores `n + 1` endpoint values: bucket
//! `i` (1-based, as in the paper) covers `(b1(i), b2(i)] =
//! (endpoints[i-1], endpoints[i]]`, and — being height-balanced — every
//! bucket holds the same number of attribute values,
//! `cardinality / buckets`.

use serde::{Deserialize, Serialize};
use tango_algebra::Value;

/// A height-balanced (equi-depth) histogram over numeric/date values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `buckets + 1` endpoints, non-decreasing, numeric view of values.
    pub endpoints: Vec<f64>,
    /// Number of (non-null) values the histogram summarizes.
    pub values: u64,
}

impl Histogram {
    /// Build from a column of values (nulls ignored). `buckets` is capped
    /// by the number of values.
    pub fn build(mut vals: Vec<f64>, buckets: usize) -> Option<Histogram> {
        if vals.is_empty() || buckets == 0 {
            return None;
        }
        vals.sort_by(f64::total_cmp);
        let n = vals.len();
        let b = buckets.min(n);
        let mut endpoints = Vec::with_capacity(b + 1);
        endpoints.push(vals[0]);
        for i in 1..=b {
            // Oracle-style: endpoint i is the value at quantile i/b.
            let idx = ((i * n) / b).saturating_sub(1);
            endpoints.push(vals[idx]);
        }
        Some(Histogram { endpoints, values: n as u64 })
    }

    /// Build from [`Value`]s using their numeric view (strings are not
    /// histogrammed, as in the paper's setting where histograms matter for
    /// time attributes).
    pub fn build_values(vals: &[Value], buckets: usize) -> Option<Histogram> {
        let nums: Vec<f64> = vals.iter().filter_map(Value::as_f64).collect();
        Self::build(nums, buckets)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.endpoints.len().saturating_sub(1)
    }

    /// `b1(i, H)`: start value of (1-based) bucket `i`.
    pub fn b1(&self, i: usize) -> f64 {
        self.endpoints[i - 1]
    }

    /// `b2(i, H)`: end value of (1-based) bucket `i`.
    pub fn b2(&self, i: usize) -> f64 {
        self.endpoints[i]
    }

    /// `bVal(i, H)`: number of attribute values in bucket `i`. Height
    /// balanced, so every bucket holds the same share.
    pub fn b_val(&self, _i: usize) -> f64 {
        self.values as f64 / self.buckets() as f64
    }

    /// `bNo(A, H)`: the (1-based) bucket containing attribute value `a`
    /// (clamped to the first/last bucket outside the histogram range).
    pub fn b_no(&self, a: f64) -> usize {
        let b = self.buckets();
        if b == 0 {
            return 1;
        }
        if a <= self.endpoints[0] {
            return 1;
        }
        for i in 1..=b {
            if a <= self.endpoints[i] {
                return i;
            }
        }
        b
    }

    /// The value at quantile `f` (0..=1), read off the height-balanced
    /// endpoints.
    pub fn quantile(&self, f: f64) -> f64 {
        let b = self.buckets();
        if b == 0 {
            return self.endpoints.first().copied().unwrap_or(0.0);
        }
        let idx = ((f.clamp(0.0, 1.0) * b as f64).round() as usize).min(b);
        self.endpoints[idx]
    }

    /// Estimated number of values strictly less than `a` — the histogram
    /// branch of the paper's `StartBefore`/`EndBefore` definitions: sum the
    /// full preceding buckets, then a linear fraction of the bucket
    /// containing `a`.
    pub fn values_below(&self, a: f64) -> f64 {
        let b = self.buckets();
        if b == 0 {
            return 0.0;
        }
        if a <= self.endpoints[0] {
            return 0.0;
        }
        if a >= self.endpoints[b] {
            return self.values as f64;
        }
        let i = self.b_no(a);
        let preceding: f64 = (1..i).map(|k| self.b_val(k)).sum();
        let (lo, hi) = (self.b1(i), self.b2(i));
        let frac = if hi > lo { (a - lo) / (hi - lo) } else { 0.5 };
        preceding + frac * self.b_val(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_data_uniform_buckets() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(vals, 10).unwrap();
        assert_eq!(h.buckets(), 10);
        assert!((h.b_val(1) - 100.0).abs() < 1e-9);
        // ~half the values lie below 500
        let est = h.values_below(500.0);
        assert!((est - 500.0).abs() < 15.0, "est = {est}");
    }

    #[test]
    fn skewed_data_adapts() {
        // 90% of values are 0..100, 10% are 900..1000
        let mut vals: Vec<f64> = (0..900).map(|i| (i % 100) as f64).collect();
        vals.extend((0..100).map(|i| 900.0 + i as f64));
        let h = Histogram::build(vals, 10).unwrap();
        // values below 100 should be ~900, not ~100 (what a uniform
        // assumption over [0, 1000] would give)
        let est = h.values_below(100.0);
        assert!(est > 700.0, "height-balanced histogram should see the skew, est = {est}");
    }

    #[test]
    fn bucket_lookup() {
        let h = Histogram::build((0..100).map(|i| i as f64).collect(), 4).unwrap();
        assert_eq!(h.b_no(-5.0), 1);
        assert_eq!(h.b_no(1e9), 4);
        assert_eq!(h.values_below(-5.0), 0.0);
        assert_eq!(h.values_below(1e9), 100.0);
    }

    proptest! {
        #[test]
        fn values_below_is_monotone(vals in proptest::collection::vec(-1e3f64..1e3, 1..200), b in 1usize..20) {
            if let Some(h) = Histogram::build(vals, b) {
                let mut prev = -1.0;
                for q in -110..110 {
                    let est = h.values_below(q as f64 * 10.0);
                    prop_assert!(est + 1e-9 >= prev);
                    prop_assert!(est <= h.values as f64 + 1e-9);
                    prev = est;
                }
            }
        }

        #[test]
        fn estimate_close_to_truth(vals in proptest::collection::vec(0f64..1000.0, 50..300)) {
            let h = Histogram::build(vals.clone(), 20).unwrap();
            for q in [100.0, 400.0, 800.0] {
                let truth = vals.iter().filter(|&&v| v < q).count() as f64;
                let est = h.values_below(q);
                // within one bucket's worth of error
                prop_assert!((est - truth).abs() <= 2.0 * h.b_val(1) + 1.0,
                    "q={q} truth={truth} est={est}");
            }
        }
    }
}
