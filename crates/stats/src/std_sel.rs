//! Conventional (non-temporal) selectivity estimation, plus the combined
//! predicate analyzer that recognizes temporal predicate patterns and
//! routes them to the Section 3.3 estimators.

use crate::stats::RelationStats;
use crate::temporal_sel;
use tango_algebra::{CmpOp, Expr, Value};

/// Default selectivity for predicates we cannot analyze (System R's
/// classic 1/3).
const DEFAULT_SEL: f64 = 1.0 / 3.0;

/// A comparison of a column against a constant, normalized to
/// `col OP value`.
struct ColCmp<'a> {
    col: &'a str,
    op: CmpOp,
    val: f64,
}

fn as_col_cmp(e: &Expr) -> Option<ColCmp<'_>> {
    let Expr::Cmp(op, l, r) = e else {
        return None;
    };
    match (l.as_ref(), r.as_ref()) {
        (Expr::Col { name, .. }, Expr::Lit(v)) => {
            Some(ColCmp { col: name, op: *op, val: v.as_f64()? })
        }
        (Expr::Lit(v), Expr::Col { name, .. }) => {
            Some(ColCmp { col: name, op: op.flip(), val: v.as_f64()? })
        }
        _ => None,
    }
}

/// Selectivity of a single comparison against a constant, using min/max
/// (uniform assumption) or the histogram when present — the standard
/// method of Section 3.3's opening paragraph.
fn cmp_selectivity(c: &ColCmp<'_>, stats: &RelationStats) -> f64 {
    let rows = stats.rows.max(1.0);
    let Some(a) = stats.attr(c.col) else {
        return DEFAULT_SEL;
    };
    let below = |x: f64| -> f64 {
        if let Some(h) = &a.histogram {
            if h.values > 0 {
                return h.values_below(x) / h.values as f64;
            }
        }
        let (min, max) = (a.min_val(), a.max_val());
        if max <= min {
            return if x > min { 1.0 } else { 0.0 };
        }
        ((x - min) / (max - min)).clamp(0.0, 1.0)
    };
    match c.op {
        CmpOp::Eq => 1.0 / stats.distinct(c.col).max(1.0),
        CmpOp::Ne => 1.0 - 1.0 / stats.distinct(c.col).max(1.0),
        CmpOp::Lt => below(c.val),
        CmpOp::Le => below(c.val) + 1.0 / rows,
        CmpOp::Gt => 1.0 - below(c.val) - 1.0 / rows,
        CmpOp::Ge => 1.0 - below(c.val),
    }
    .clamp(0.0, 1.0)
}

/// Selectivity of an arbitrary predicate (without temporal-pattern
/// recognition; see [`select_cardinality`] for the full analyzer).
pub fn selectivity(pred: &Expr, stats: &RelationStats) -> f64 {
    match pred {
        Expr::And(l, r) => selectivity(l, stats) * selectivity(r, stats),
        Expr::Or(l, r) => {
            let (a, b) = (selectivity(l, stats), selectivity(r, stats));
            (a + b - a * b).clamp(0.0, 1.0)
        }
        Expr::Not(e) => 1.0 - selectivity(e, stats),
        Expr::Lit(Value::Int(i)) => {
            if *i != 0 {
                1.0
            } else {
                0.0
            }
        }
        Expr::Cmp(op, l, r) => {
            if let Some(c) = as_col_cmp(pred) {
                return cmp_selectivity(&c, stats);
            }
            // column-to-column comparison
            if let (Expr::Col { name: ln, .. }, Expr::Col { name: rn, .. }) =
                (l.as_ref(), r.as_ref())
            {
                return match op {
                    CmpOp::Eq => 1.0 / stats.distinct(ln).max(stats.distinct(rn)).max(1.0),
                    _ => DEFAULT_SEL,
                };
            }
            DEFAULT_SEL
        }
        Expr::IsNull(e, negated) => {
            if let Expr::Col { name, .. } = e.as_ref() {
                if let Some(a) = stats.attr(name) {
                    let f = (a.nulls as f64 / stats.rows.max(1.0)).clamp(0.0, 1.0);
                    return if *negated { 1.0 - f } else { f };
                }
            }
            DEFAULT_SEL
        }
        _ => DEFAULT_SEL,
    }
}

/// Estimate the output cardinality of `σ_pred(r)`.
///
/// When the relation is temporal (`period` gives the `T1`/`T2` attribute
/// names) the analyzer first looks for the `Overlaps` pattern — a
/// conjunct pair `T1 < B` (or `<=`) and `T2 > A` (or `>=`) — and
/// estimates it *jointly* with [`temporal_sel::overlaps_cardinality`];
/// remaining conjuncts are estimated conventionally and multiplied in.
pub fn select_cardinality(pred: &Expr, stats: &RelationStats, period: Option<(&str, &str)>) -> f64 {
    select_cardinality_with(pred, stats, period, false)
}

/// [`select_cardinality`] with an explicit estimation mode.
///
/// With `naive_overlaps` set, the joint `Overlaps`-pattern analyzer is
/// bypassed and every temporal conjunct is estimated independently — the
/// naive approach Section 3.3 shows to be ~40× wrong. This mode exists to
/// seed misestimates on purpose (adaptivity tests and benchmarks); normal
/// optimization always uses the joint estimator.
pub fn select_cardinality_with(
    pred: &Expr,
    stats: &RelationStats,
    period: Option<(&str, &str)>,
    naive_overlaps: bool,
) -> f64 {
    let conjuncts = pred.conjuncts();
    let mut consumed = vec![false; conjuncts.len()];
    let mut card = stats.rows;

    let period = if naive_overlaps { None } else { period };
    if let Some((t1, t2)) = period {
        let is_attr = |name: &str, attr: &str| {
            name.rsplit('.').next().unwrap_or(name).eq_ignore_ascii_case(attr)
        };
        // find T1 < B (upper bound on start)
        let mut upper: Option<(usize, f64)> = None;
        let mut lower: Option<(usize, f64)> = None;
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some(cc) = as_col_cmp(c) {
                if is_attr(cc.col, t1) && matches!(cc.op, CmpOp::Lt | CmpOp::Le) && upper.is_none()
                {
                    let b = if cc.op == CmpOp::Le { cc.val + 1.0 } else { cc.val };
                    upper = Some((i, b));
                }
                if is_attr(cc.col, t2) && matches!(cc.op, CmpOp::Gt | CmpOp::Ge) && lower.is_none()
                {
                    let a = if cc.op == CmpOp::Ge { cc.val - 1.0 } else { cc.val };
                    lower = Some((i, a));
                }
            }
        }
        if let (Some((i, b)), Some((j, a))) = (upper, lower) {
            card = temporal_sel::overlaps_cardinality(a, b, stats, t1, t2);
            consumed[i] = true;
            consumed[j] = true;
        }
    }

    for (i, c) in conjuncts.iter().enumerate() {
        if !consumed[i] {
            card *= selectivity(c, stats);
        }
    }
    card.clamp(0.0, stats.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AttrStats;
    use tango_algebra::date::day;

    fn stats() -> RelationStats {
        let mut s = RelationStats { rows: 1000.0, ..Default::default() };
        s.set_attr(
            "PayRate",
            AttrStats { min: Some(0.0), max: Some(100.0), distinct: 100, ..Default::default() },
        );
        s.set_attr(
            "PosID",
            AttrStats { min: Some(1.0), max: Some(200.0), distinct: 200, ..Default::default() },
        );
        s.set_attr(
            "T1",
            AttrStats {
                min: Some(day(1995, 1, 1) as f64),
                max: Some(day(1999, 12, 25) as f64),
                distinct: 1819,
                ..Default::default()
            },
        );
        s.set_attr(
            "T2",
            AttrStats {
                min: Some(day(1995, 1, 8) as f64),
                max: Some(day(2000, 1, 1) as f64),
                distinct: 1819,
                ..Default::default()
            },
        );
        s
    }

    #[test]
    fn equality_uses_distinct() {
        let s = stats();
        let e = Expr::eq(Expr::col("PosID"), Expr::lit(7));
        assert!((selectivity(&e, &s) - 1.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn range_uses_uniform() {
        let s = stats();
        let e = Expr::cmp(CmpOp::Gt, Expr::col("PayRate"), Expr::lit(Value::Double(10.0)));
        let sel = selectivity(&e, &s);
        assert!((sel - 0.9).abs() < 0.01, "got {sel}");
        // flipped literal-first form
        let e = Expr::cmp(CmpOp::Lt, Expr::lit(Value::Double(10.0)), Expr::col("PayRate"));
        assert!((selectivity(&e, &s) - sel).abs() < 1e-12);
    }

    #[test]
    fn overlaps_pattern_recognized() {
        let s = stats();
        let a = day(1997, 2, 1);
        let b = day(1997, 2, 8);
        let pred = Expr::overlaps("T1", "T2", Expr::lit(Value::Date(a)), Expr::lit(Value::Date(b)));
        let joint = select_cardinality(&pred, &s, Some(("T1", "T2")));
        let naive = select_cardinality(&pred, &s, None);
        assert!(joint < naive / 10.0, "joint={joint} naive={naive}");
        // joint should be ~0.7% of rows
        assert!((joint / s.rows) < 0.02);
    }

    #[test]
    fn boolean_combinators() {
        let s = stats();
        let eq = Expr::eq(Expr::col("PosID"), Expr::lit(7)); // 1/200
        let not_eq = Expr::not(eq.clone());
        assert!((selectivity(&not_eq, &s) - (1.0 - 1.0 / 200.0)).abs() < 1e-9);
        let or = Expr::or(eq.clone(), Expr::eq(Expr::col("PosID"), Expr::lit(8)));
        let (a, b) = (1.0 / 200.0, 1.0 / 200.0);
        assert!((selectivity(&or, &s) - (a + b - a * b)).abs() < 1e-9);
        // col-to-col equality uses 1/max(distinct)
        let cc = Expr::eq(Expr::col("PosID"), Expr::col("PayRate"));
        assert!((selectivity(&cc, &s) - 1.0 / 200.0).abs() < 1e-9);
        // unanalyzable predicates fall back to 1/3
        let unk = Expr::cmp(
            CmpOp::Lt,
            Expr::Arith(
                tango_algebra::ArithOp::Add,
                Box::new(Expr::col("PosID")),
                Box::new(Expr::col("PayRate")),
            ),
            Expr::lit(10),
        );
        assert!((selectivity(&unk, &s) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn timeslice_pattern_via_le_and_gt() {
        // T1 <= A AND T2 > A, written with inclusive start
        let s = stats();
        let a = day(1997, 6, 1);
        let pred = Expr::and(
            Expr::cmp(CmpOp::Le, Expr::col("T1"), Expr::lit(Value::Date(a))),
            Expr::cmp(CmpOp::Gt, Expr::col("T2"), Expr::lit(Value::Date(a))),
        );
        let card = select_cardinality(&pred, &s, Some(("T1", "T2")));
        // ~7-day periods: a timeslice catches a thin sliver of 1000 rows
        assert!(card < 0.05 * s.rows, "got {card}");
        assert!(card > 0.0);
    }

    #[test]
    fn mixed_predicate_combines() {
        let s = stats();
        let pred = Expr::and(
            Expr::overlaps(
                "T1",
                "T2",
                Expr::lit(Value::Date(day(1997, 2, 1))),
                Expr::lit(Value::Date(day(1997, 2, 8))),
            ),
            Expr::cmp(CmpOp::Gt, Expr::col("PayRate"), Expr::lit(Value::Double(10.0))),
        );
        let card = select_cardinality(&pred, &s, Some(("T1", "T2")));
        let temporal_only = select_cardinality(
            &Expr::overlaps(
                "T1",
                "T2",
                Expr::lit(Value::Date(day(1997, 2, 1))),
                Expr::lit(Value::Date(day(1997, 2, 8))),
            ),
            &s,
            Some(("T1", "T2")),
        );
        assert!((card / temporal_only - 0.9).abs() < 0.02);
    }
}
