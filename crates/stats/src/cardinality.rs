//! Result-statistics derivation for every TANGO operator.
//!
//! Given the statistics of an operator's argument(s), derive the
//! statistics of its result — cardinality (the focus of Section 3 of the
//! paper), average tuple size (for the `size(r)` terms of the cost
//! formulas), and per-attribute statistics propagated where meaningful.

use crate::stats::{AttrStats, RelationStats};
use crate::std_sel::select_cardinality_with;
use tango_algebra::{AggFunc, Expr, Logical, Schema};

/// Derive the statistics of `op`'s output.
///
/// `input_stats`/`input_schemas` are the operator's children in order;
/// `out_schema` is the operator's output schema (from
/// [`Logical::output_schema`]). `Get` is not derivable here — base
/// statistics come from the DBMS catalog via the Statistics Collector.
pub fn derive_stats(
    op: &Logical,
    input_stats: &[&RelationStats],
    input_schemas: &[&Schema],
    out_schema: &Schema,
) -> RelationStats {
    derive_stats_with(op, input_stats, input_schemas, out_schema, false)
}

/// [`derive_stats`] with an explicit estimation mode.
///
/// `naive_overlaps` disables the joint `Overlaps`-pattern estimator in
/// selections (see [`crate::std_sel::select_cardinality_with`]) so the
/// Section 3.3 misestimate can be reproduced deliberately.
pub fn derive_stats_with(
    op: &Logical,
    input_stats: &[&RelationStats],
    input_schemas: &[&Schema],
    out_schema: &Schema,
    naive_overlaps: bool,
) -> RelationStats {
    match op {
        Logical::Get { .. } => RelationStats {
            rows: 1000.0,
            avg_tuple_bytes: out_schema.est_tuple_bytes() as f64,
            ..Default::default()
        },
        Logical::Select { pred, .. } => {
            derive_select_with(pred, input_stats[0], input_schemas[0], naive_overlaps)
        }
        Logical::Sort { .. } | Logical::TransferM { .. } | Logical::TransferD { .. } => {
            input_stats[0].clone()
        }
        Logical::Project { items, .. } => {
            let input = input_stats[0];
            let mut out = RelationStats { rows: input.rows, ..Default::default() };
            for it in items {
                let ast = source_attr(&it.expr, input);
                out.set_attr(&it.alias, ast);
            }
            out.avg_tuple_bytes = tuple_bytes(&out, out_schema);
            out.blocks = blocks_of(&out);
            out
        }
        Logical::Join { eq, .. } => derive_join(eq, input_stats, out_schema, 1.0),
        Logical::TJoin { eq, .. } => {
            let overlap = overlap_factor(input_stats, input_schemas);
            derive_join(eq, input_stats, out_schema, overlap)
        }
        Logical::Product { .. } => {
            let rows = input_stats[0].rows * input_stats[1].rows;
            let mut out = merge_attrs(input_stats, rows);
            out.rows = rows;
            out.avg_tuple_bytes = input_stats[0].avg_tuple_bytes + input_stats[1].avg_tuple_bytes;
            out.blocks = blocks_of(&out);
            out
        }
        Logical::TAggr { group_by, aggs, .. } => {
            derive_taggr(group_by, aggs, input_stats[0], input_schemas[0], out_schema)
        }
        Logical::DupElim { .. } => {
            let input = input_stats[0];
            // Cardinality bounded by the product of per-attribute distinct
            // counts, saturating at the input cardinality.
            let mut prod: f64 = 1.0;
            for a in input.attrs.values() {
                prod = (prod * a.distinct.max(1) as f64).min(input.rows.max(1.0));
            }
            let mut out = input.clone();
            out.rows = prod.max(1.0).min(input.rows);
            cap_distincts(&mut out);
            out
        }
        Logical::Coalesce { .. } => {
            // Coalescing merges value-equivalent adjacent periods; the
            // reduction depends on the data. Without further information we
            // assume a modest reduction (none is also possible).
            let mut out = input_stats[0].clone();
            out.rows = (out.rows * 0.7).max(1.0_f64.min(out.rows));
            cap_distincts(&mut out);
            out
        }
        Logical::Diff { .. } => {
            let mut out = input_stats[0].clone();
            // Classic textbook guess: half the left input survives.
            out.rows = (out.rows * 0.5).max(0.0);
            cap_distincts(&mut out);
            out
        }
    }
}

/// Derive statistics for a selection, applying the temporal analyzer when
/// the input schema is temporal.
pub fn derive_select(pred: &Expr, input: &RelationStats, schema: &Schema) -> RelationStats {
    derive_select_with(pred, input, schema, false)
}

/// [`derive_select`] with an explicit estimation mode (see
/// [`derive_stats_with`]).
pub fn derive_select_with(
    pred: &Expr,
    input: &RelationStats,
    schema: &Schema,
    naive_overlaps: bool,
) -> RelationStats {
    let period =
        schema.period().map(|(i, j)| (schema.attr(i).name.as_str(), schema.attr(j).name.as_str()));
    let rows = select_cardinality_with(pred, input, period, naive_overlaps);
    let mut out = input.clone();
    out.rows = rows;
    cap_distincts(&mut out);
    out.blocks = blocks_of(&out);
    out
}

fn derive_join(
    eq: &[(String, String)],
    input_stats: &[&RelationStats],
    out_schema: &Schema,
    extra_factor: f64,
) -> RelationStats {
    let (l, r) = (input_stats[0], input_stats[1]);
    let mut rows = l.rows * r.rows;
    let mut first_pair_done = false;
    if let Some((lc, rc)) = eq.first() {
        // Prefer the histogram-based estimate for the primary join pair:
        // it sees value skew the uniform 1/max(distinct) rule misses (the
        // misestimates the paper reports for Query 3's skewed PosID).
        if let (Some(la), Some(ra)) = (l.attr(lc), r.attr(rc)) {
            if let Some(est) = histogram_join_rows(la, ra) {
                // scale for selections applied since the histograms were
                // collected (attribute histograms describe base data)
                let lv = la.histogram.as_ref().map(|h| h.values as f64).unwrap_or(l.rows);
                let rv = ra.histogram.as_ref().map(|h| h.values as f64).unwrap_or(r.rows);
                let scale = (l.rows / lv.max(1.0)) * (r.rows / rv.max(1.0));
                rows = est * scale;
                first_pair_done = true;
            }
        }
    }
    for (i, (lc, rc)) in eq.iter().enumerate() {
        if i == 0 && first_pair_done {
            continue;
        }
        let d = l.distinct(lc).max(r.distinct(rc)).max(1.0);
        rows /= d;
    }
    rows = (rows * extra_factor).max(0.0);
    let mut out = merge_attrs(input_stats, rows);
    out.rows = rows;
    out.avg_tuple_bytes = tuple_bytes(&out, out_schema);
    out.blocks = blocks_of(&out);
    out
}

/// Histogram-based equi-join cardinality: treat each height-balanced
/// bucket of the left histogram as a uniform density `count/width` and
/// integrate it against the right histogram's density over the same
/// range: `rows ≈ Σ_i c_l(i) · r_in_range(i) / width(i)`. On skewed keys
/// (narrow buckets = popular values) this captures the quadratic blowup
/// a plain `|L|·|R| / max(d_l, d_r)` misses; on uniform keys both agree.
fn histogram_join_rows(l: &AttrStats, r: &AttrStats) -> Option<f64> {
    let lh = l.histogram.as_ref()?;
    let rh = r.histogram.as_ref()?;
    if lh.values == 0 || rh.values == 0 || lh.buckets() == 0 {
        return None;
    }
    let mut rows = 0.0;
    for i in 1..=lh.buckets() {
        let (a, b) = (lh.b1(i), lh.b2(i));
        let c_l = lh.b_val(i);
        if b - a < 1.0 {
            // a single popular value fills the bucket
            let r_at = (rh.values_below(a + 0.5) - rh.values_below(a - 0.5)).max(0.0);
            rows += c_l * r_at;
        } else {
            let w = b - a;
            let r_in = (rh.values_below(b) - rh.values_below(a)).max(0.0);
            rows += c_l * r_in / w;
        }
    }
    Some(rows)
}

/// Probability that two periods drawn from the joined relations overlap,
/// estimated from average durations over the common timeline (the
/// Gunadhi–Segev-style model the paper's technical report uses).
///
/// The mean start/end times come from the histograms when available —
/// with skewed time distributions (like POSITION's concentration after
/// 1992) the min/max midpoint badly underestimates the mean duration,
/// and with it the join cardinality.
fn overlap_factor(input_stats: &[&RelationStats], input_schemas: &[&Schema]) -> f64 {
    let mean_of = |a: &crate::stats::AttrStats| -> f64 {
        if let Some(h) = &a.histogram {
            let b = h.buckets();
            if b > 0 {
                // height-balanced: every bucket holds the same share, so
                // the mean is the average of bucket midpoints
                let sum: f64 = (1..=b).map(|i| (h.b1(i) + h.b2(i)) / 2.0).sum();
                return sum / b as f64;
            }
        }
        (a.min_val() + a.max_val()) / 2.0
    };
    let mut durs = [0.0f64; 2];
    let mut span_lo = f64::INFINITY;
    let mut span_hi = f64::NEG_INFINITY;
    for (k, (st, sc)) in input_stats.iter().zip(input_schemas).enumerate() {
        let Some((i1, i2)) = sc.period() else {
            return 1.0;
        };
        let t1 = sc.attr(i1).name.as_str();
        let t2 = sc.attr(i2).name.as_str();
        let (Some(a1), Some(a2)) = (st.attr(t1), st.attr(t2)) else {
            return 1.0;
        };
        durs[k] = (mean_of(a2) - mean_of(a1)).max(1.0);
        // effective span: with skewed time data the raw min/max wildly
        // overstates where the mass lives — use the inter-decile range
        // (inflated back to a full span) when histograms are available
        let (lo, hi) = match (&a1.histogram, &a2.histogram) {
            (Some(h1), Some(h2)) => {
                let lo = h1.quantile(0.1);
                let hi = h2.quantile(0.9);
                let spread = (hi - lo).max(1.0) / 0.8;
                (lo - spread * 0.1, lo - spread * 0.1 + spread)
            }
            _ => (a1.min_val(), a2.max_val()),
        };
        span_lo = span_lo.min(lo);
        span_hi = span_hi.max(hi);
    }
    let span = (span_hi - span_lo).max(1.0);
    ((durs[0] + durs[1]) / span).clamp(0.0, 1.0)
}

/// The Section 3.4 cardinality estimate for temporal aggregation: bounded
/// between `min_card` and `max_card`, using 60 % of the maximum when that
/// exceeds the minimum.
pub fn taggr_cardinality(group_by: &[String], input: &RelationStats, input_schema: &Schema) -> f64 {
    let card = input.rows.max(0.0);
    if card == 0.0 {
        return 0.0;
    }
    let (t1, t2) = match input_schema.period() {
        Some((i, j)) => (input_schema.attr(i).name.clone(), input_schema.attr(j).name.clone()),
        None => ("T1".to_string(), "T2".to_string()),
    };
    let dt1 = input.distinct(&t1);
    let dt2 = input.distinct(&t2);

    let min_card = if group_by.is_empty() {
        1.0
    } else {
        group_by
            .iter()
            .map(|g| input.distinct(g))
            .fold(f64::INFINITY, f64::min)
            .min(dt1 + 1.0)
            .min(dt2 + 1.0)
            .max(1.0)
    };

    let max_card = if group_by.is_empty() {
        (dt1 + dt2 + 1.0).min(card * 2.0 - 1.0)
    } else {
        let max_d = group_by.iter().map(|g| input.distinct(g)).fold(1.0f64, f64::max);
        // the paper's bound, tightened by a second valid bound: each
        // group contributes at most distinct(T1)+distinct(T2)+1 constant
        // periods, so few distinct endpoints cap the result regardless of
        // group sizes
        (((card / max_d) * 2.0 - 1.0) * max_d).min(max_d * (dt1 + dt2 + 1.0)).min(card * 2.0 - 1.0)
    }
    .max(min_card);

    // "For experiments, we use 60% of the maximum cardinality if the
    // resulting value is bigger than the minimum cardinality, and the
    // minimum cardinality, otherwise."
    let est = 0.6 * max_card;
    if est > min_card {
        est
    } else {
        min_card
    }
}

fn derive_taggr(
    group_by: &[String],
    aggs: &[tango_algebra::AggSpec],
    input: &RelationStats,
    input_schema: &Schema,
    out_schema: &Schema,
) -> RelationStats {
    let rows = taggr_cardinality(group_by, input, input_schema);
    let mut out = RelationStats { rows, ..Default::default() };
    for g in group_by {
        let ast = input.attr(g).cloned().unwrap_or_default();
        out.set_attr(g, ast);
    }
    // constant-period endpoints combine both input endpoint sets
    let (t1n, t2n) = match input_schema.period() {
        Some((i, j)) => (input_schema.attr(i).name.clone(), input_schema.attr(j).name.clone()),
        None => ("T1".into(), "T2".into()),
    };
    let combine = |a: Option<&AttrStats>, b: Option<&AttrStats>| -> AttrStats {
        let (a, b) = (a.cloned().unwrap_or_default(), b.cloned().unwrap_or_default());
        AttrStats {
            min: a.min.into_iter().chain(b.min).reduce(f64::min),
            max: a.max.into_iter().chain(b.max).reduce(f64::max),
            distinct: a.distinct + b.distinct,
            avg_width: 8.0,
            ..Default::default()
        }
    };
    out.set_attr("T1", combine(input.attr(&t1n), input.attr(&t2n)));
    out.set_attr("T2", combine(input.attr(&t1n), input.attr(&t2n)));
    for a in aggs {
        let distinct = match a.func {
            AggFunc::Count => (rows / 4.0).max(1.0) as u64,
            _ => (rows / 2.0).max(1.0) as u64,
        };
        out.set_attr(&a.alias, AttrStats { distinct, avg_width: 8.0, ..Default::default() });
    }
    cap_distincts(&mut out);
    out.avg_tuple_bytes = tuple_bytes(&out, out_schema);
    out.blocks = blocks_of(&out);
    out
}

/// Attribute statistics for a projection item: plain columns inherit their
/// source stats; computed expressions get defaults.
fn source_attr(e: &Expr, input: &RelationStats) -> AttrStats {
    match e {
        Expr::Col { name, .. } => input.attr(name).cloned().unwrap_or_default(),
        Expr::Greatest(es) | Expr::Least(es) => {
            // bounded by the extremes of the participating columns
            let mut out = AttrStats { avg_width: 8.0, ..Default::default() };
            for e in es {
                let a = source_attr(e, input);
                out.min = out.min.into_iter().chain(a.min).reduce(f64::min);
                out.max = out.max.into_iter().chain(a.max).reduce(f64::max);
                out.distinct = out.distinct.max(a.distinct);
            }
            out
        }
        _ => AttrStats { distinct: 0, avg_width: 8.0, ..Default::default() },
    }
}

fn merge_attrs(input_stats: &[&RelationStats], rows: f64) -> RelationStats {
    let mut out = RelationStats { rows, ..Default::default() };
    for st in input_stats {
        for (k, v) in &st.attrs {
            out.attrs.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }
    cap_distincts(&mut out);
    out
}

fn cap_distincts(s: &mut RelationStats) {
    let rows = s.rows.max(0.0) as u64;
    for a in s.attrs.values_mut() {
        a.distinct = a.distinct.min(rows.max(1));
        // derived relations lose their physical indexes
        a.indexed = false;
        a.clustered = false;
    }
}

/// Average tuple width from attribute widths, falling back to the schema
/// estimate for attributes without statistics.
fn tuple_bytes(s: &RelationStats, schema: &Schema) -> f64 {
    let mut total = 0.0;
    for attr in schema.attrs() {
        total += s
            .attr(&attr.name)
            .map(|a| if a.avg_width > 0.0 { a.avg_width } else { 8.0 })
            .unwrap_or_else(|| match attr.ty {
                tango_algebra::Type::Str => 18.0,
                tango_algebra::Type::Date => 4.0,
                _ => 8.0,
            });
    }
    total.max(1.0)
}

fn blocks_of(s: &RelationStats) -> u64 {
    ((s.rows * s.avg_tuple_bytes) as u64).div_ceil(8192).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::{AggSpec, Attr, Type};

    fn position_stats(rows: f64) -> (RelationStats, Schema) {
        let schema = Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("EmpName", Type::Str),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]);
        let mut s = RelationStats { rows, avg_tuple_bytes: 40.0, ..Default::default() };
        s.set_attr(
            "PosID",
            AttrStats { distinct: (rows / 5.0) as u64, avg_width: 8.0, ..Default::default() },
        );
        s.set_attr(
            "EmpName",
            AttrStats { distinct: (rows / 2.0) as u64, avg_width: 18.0, ..Default::default() },
        );
        s.set_attr(
            "T1",
            AttrStats {
                min: Some(0.0),
                max: Some(1000.0),
                distinct: 900,
                avg_width: 8.0,
                ..Default::default()
            },
        );
        s.set_attr(
            "T2",
            AttrStats {
                min: Some(10.0),
                max: Some(1100.0),
                distinct: 900,
                avg_width: 8.0,
                ..Default::default()
            },
        );
        (s, schema)
    }

    #[test]
    fn taggr_bounds_and_60_percent_rule() {
        let (s, schema) = position_stats(10_000.0);
        let card = taggr_cardinality(&["PosID".to_string()], &s, &schema);
        // max = ((10000/2000)*2 - 1) * 2000 = 18000; 60% = 10800
        assert!((card - 10_800.0).abs() < 1.0, "got {card}");
        // no grouping: bounded by distinct endpoints
        let card = taggr_cardinality(&[], &s, &schema);
        assert!((card - 0.6 * 1801.0).abs() < 1.0, "got {card}");
        // tiny relation: minimum kicks in
        let (s2, schema2) = position_stats(1.0);
        let card = taggr_cardinality(&["PosID".to_string()], &s2, &schema2);
        assert!(card >= 1.0);
    }

    #[test]
    fn join_cardinality_uses_max_distinct() {
        let (s, schema) = position_stats(10_000.0);
        let op = Logical::get("A")
            .join(Logical::get("B"), vec![("PosID".to_string(), "PosID".to_string())]);
        let out_schema = tango_algebra::logical::concat_schemas(&schema, &schema);
        let d = derive_stats(&op, &[&s, &s], &[&schema, &schema], &out_schema);
        // |L|*|R| / max(d, d) = 1e8 / 2000 = 50_000
        assert!((d.rows - 50_000.0).abs() < 1.0, "got {}", d.rows);
        assert!(d.avg_tuple_bytes > s.avg_tuple_bytes);
    }

    #[test]
    fn histogram_join_estimate_sees_skew() {
        use crate::histogram::Histogram;
        // skewed key column: frequency of key k ~ quadratic head
        let mut keys: Vec<f64> = Vec::new();
        let mut x = 1u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x % 1_000_000) as f64 / 1_000_000.0;
            keys.push((u.powf(1.5) * 4000.0).floor());
        }
        // ground truth self-join size
        let mut counts = std::collections::HashMap::new();
        for k in &keys {
            *counts.entry(*k as i64).or_insert(0u64) += 1;
        }
        let truth: f64 = counts.values().map(|&c| (c * c) as f64).sum();
        let uniform_est = (keys.len() as f64).powi(2) / counts.len() as f64;

        let h = Histogram::build(keys.clone(), 20).unwrap();
        let attr = AttrStats {
            min: Some(0.0),
            max: Some(4000.0),
            distinct: counts.len() as u64,
            histogram: Some(h),
            ..Default::default()
        };
        let est = histogram_join_rows(&attr, &attr).unwrap();
        // the histogram estimate must be much closer to the truth than
        // the uniform rule on skewed data
        assert!(
            (est / truth).max(truth / est) < (uniform_est / truth).max(truth / uniform_est),
            "hist={est:.0} uniform={uniform_est:.0} truth={truth:.0}"
        );
        assert!((est / truth).max(truth / est) < 4.0, "hist={est:.0} truth={truth:.0}");
    }

    #[test]
    fn histogram_join_estimate_matches_uniform_fk() {
        use crate::histogram::Histogram;
        // uniform FK join: POSITION.EmpID (dups) vs EMPLOYEE.EmpID (unique)
        let fk: Vec<f64> = (0..30_000).map(|i| (i % 10_000) as f64).collect();
        let pk: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let mk = |vals: &[f64], d: u64| AttrStats {
            min: Some(0.0),
            max: Some(10_000.0),
            distinct: d,
            histogram: Histogram::build(vals.to_vec(), 20),
            ..Default::default()
        };
        let est = histogram_join_rows(&mk(&fk, 10_000), &mk(&pk, 10_000)).unwrap();
        // truth: every fk row matches exactly one pk row => 30_000
        assert!((est - 30_000.0).abs() / 30_000.0 < 0.25, "est={est:.0}");
    }

    #[test]
    fn tjoin_smaller_than_join() {
        let (s, schema) = position_stats(10_000.0);
        let j = Logical::get("A")
            .join(Logical::get("B"), vec![("PosID".to_string(), "PosID".to_string())]);
        let tj = Logical::get("A")
            .tjoin(Logical::get("B"), vec![("PosID".to_string(), "PosID".to_string())]);
        let out_j = tango_algebra::logical::concat_schemas(&schema, &schema);
        let out_tj = tango_algebra::logical::tjoin_schema(
            &[("PosID".to_string(), "PosID".to_string())],
            &schema,
            &schema,
        )
        .unwrap();
        let dj = derive_stats(&j, &[&s, &s], &[&schema, &schema], &out_j);
        let dtj = derive_stats(&tj, &[&s, &s], &[&schema, &schema], &out_tj);
        assert!(dtj.rows < dj.rows, "temporal join must be rarer: {} vs {}", dtj.rows, dj.rows);
        assert!(dtj.rows > 0.0);
    }

    #[test]
    fn select_derivation_is_temporal_aware() {
        let (s, schema) = position_stats(10_000.0);
        let pred = Expr::overlaps("T1", "T2", Expr::lit(500), Expr::lit(510));
        let d = derive_select(&pred, &s, &schema);
        assert!(d.rows < 0.1 * s.rows, "temporal estimate should be selective: {}", d.rows);
        for a in d.attrs.values() {
            assert!(a.distinct <= d.rows.max(1.0) as u64);
        }
    }

    #[test]
    fn taggr_derive_full() {
        let (s, schema) = position_stats(10_000.0);
        let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "C")];
        let out_schema =
            tango_algebra::logical::taggr_schema(&["PosID".to_string()], &aggs, &schema).unwrap();
        let op = Logical::get("A").taggr(vec!["PosID".into()], aggs);
        let d = derive_stats(&op, &[&s], &[&schema], &out_schema);
        assert!(d.rows > 0.0);
        assert!(d.attr("T1").unwrap().distinct >= 900);
        assert!(d.avg_tuple_bytes > 0.0);
    }
}
