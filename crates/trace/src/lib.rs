//! # tango-trace
//!
//! The unified execution-trace layer of the TANGO middleware.
//!
//! Every component that measures anything — the Execution Engine timing
//! its operator cursors, the Cost Estimator timing calibration probes,
//! the benchmark harness timing whole queries — goes through this one
//! crate, so a microsecond means the same thing everywhere and the
//! adaptive feedback loop consumes exactly what the experiments report.
//!
//! Three pieces:
//!
//! * [`Stopwatch`] — a wire-aware interval timer. TANGO's experiments
//!   charge *wall time plus simulated wire time*; the stopwatch takes
//!   the wire counter's value at start and stop so both components are
//!   captured by construction.
//! * [`Collector`] / [`SpanSlot`] / [`OpSpan`] — per-operator span
//!   recording. The engine allocates one [`SpanSlot`] per plan operator
//!   (cheap atomics, written from inside the cursor hot path) and
//!   [`Collector::finish`] turns the slots into immutable [`OpSpan`]s
//!   with inclusive/exclusive times resolved.
//! * [`json`] — a tiny hand-rolled JSON writer (the workspace is
//!   offline and carries no serde_json), used to emit machine-readable
//!   trace reports from `EXPLAIN ANALYZE` and the benchmark binaries.
//!
//! Tracing is zero-cost when disabled: a [`TraceHandle`] is an
//! `Option<Arc<SpanSlot>>`, and the engine's untraced execution path
//! never wraps cursors at all, so disabled runs execute the bare
//! operator pipeline.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which side of the wire an operator ran on. Mirrors the paper's
/// superscript convention (`...^M` middleware, `...^D` DBMS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanSite {
    /// Evaluated by a middleware cursor.
    Middleware,
    /// Evaluated inside the DBMS (generated SQL or a loader).
    Dbms,
}

impl SpanSite {
    /// Lower-case name used in JSON and rendered plans.
    pub fn name(self) -> &'static str {
        match self {
            SpanSite::Middleware => "middleware",
            SpanSite::Dbms => "dbms",
        }
    }
}

/// A wire-aware interval timer.
///
/// TANGO runs against a DBMS behind a *simulated* JDBC link whose
/// transfer delays are accounted in a monotonic counter rather than
/// slept. Real experiments would include those delays in wall time;
/// the stopwatch therefore adds the counter's delta to the measured
/// interval, making timed results independent of whether the wire is
/// simulated or real.
#[derive(Debug)]
pub struct Stopwatch {
    started: Instant,
    wire_before: Duration,
}

impl Stopwatch {
    /// Start timing. `wire_now` is the current total of the link's
    /// charged wire time (pass [`Duration::ZERO`] for wire-free code).
    pub fn start(wire_now: Duration) -> Stopwatch {
        Stopwatch { started: Instant::now(), wire_before: wire_now }
    }

    /// Elapsed wall time plus wire time charged since `start`.
    pub fn elapsed(&self, wire_now: Duration) -> Duration {
        self.started.elapsed() + wire_now.saturating_sub(self.wire_before)
    }

    /// [`Stopwatch::elapsed`] in microseconds, the unit of the cost model.
    pub fn elapsed_us(&self, wire_now: Duration) -> f64 {
        self.elapsed(wire_now).as_secs_f64() * 1e6
    }
}

/// Live measurement sink for one operator: a handful of atomics written
/// from the cursor hot path, plus identity fixed at creation.
#[derive(Debug)]
pub struct SpanSlot {
    /// Operator label, e.g. `TAGGR^M` or `TRANSFER^D`.
    pub name: String,
    /// Evaluation site.
    pub site: SpanSite,
    /// Span indices of this operator's inputs within the collector.
    pub children: Vec<usize>,
    ns: AtomicU64,
    rows: AtomicU64,
    bytes: AtomicU64,
    server_ns: AtomicU64,
    counters: std::sync::Mutex<Vec<(&'static str, u64)>>,
    events: std::sync::Mutex<Vec<SpanEvent>>,
    annotations: std::sync::Mutex<Vec<(&'static str, String)>>,
}

/// A discrete occurrence recorded against a span — a wire fault, a
/// retry, a mid-execution re-plan. Unlike counters (sampled once at
/// close), events are appended the moment they happen and keep their
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Event kind, e.g. `fault`, `retry`, `replan`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl SpanSlot {
    /// Charge an interval of execution time to this operator.
    pub fn add_time(&self, d: Duration) {
        self.ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record one produced tuple of the given size.
    pub fn add_row(&self, bytes: u64) {
        self.rows.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a whole produced batch in one shot: `rows` tuples totalling
    /// `bytes`. Two relaxed adds amortized over the batch — row and byte
    /// accounting stay exactly equal to calling [`SpanSlot::add_row`]
    /// once per tuple.
    pub fn add_batch(&self, rows: u64, bytes: u64) {
        self.rows.fetch_add(rows, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record DBMS server-side compute time observed by this operator
    /// (`TRANSFER^M` reads it from the statement's result cursor).
    pub fn add_server_time(&self, d: Duration) {
        self.server_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Attach operator-specific counters (spills, comparisons, SQL
    /// round-trips, ...), typically polled from the cursor at close.
    pub fn set_counters(&self, counters: Vec<(&'static str, u64)>) {
        if !counters.is_empty() {
            *self.counters.lock().unwrap_or_else(|e| e.into_inner()) = counters;
        }
    }

    /// Add `value` to the named counter, appending it if absent. Unlike
    /// [`SpanSlot::set_counters`] (which replaces the whole list when a
    /// cursor is polled at close), this merges — used by the engine to
    /// attach driver-level counters (e.g. `replans`) to a span whose
    /// cursor has already closed and reported its own.
    pub fn add_counter(&self, name: &'static str, value: u64) {
        let mut c = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        match c.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v += value,
            None => c.push((name, value)),
        }
    }

    /// Has an event of the given kind been recorded on this span?
    pub fn has_event(&self, kind: &str) -> bool {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).iter().any(|e| e.kind == kind)
    }

    /// Append a discrete event (fault, retry, replan, ...) to this span.
    pub fn add_event(&self, kind: impl Into<String>, detail: impl Into<String>) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpanEvent { kind: kind.into(), detail: detail.into() });
    }

    /// Attach a qualitative key/value annotation to this span, e.g.
    /// `cache: hit`. Unlike counters (numeric, polled at close) an
    /// annotation describes a *state* the operator was in; rendered in
    /// `EXPLAIN ANALYZE` as `key value` and in JSON as an object field.
    pub fn add_annotation(&self, key: &'static str, value: impl Into<String>) {
        self.annotations.lock().unwrap_or_else(|e| e.into_inner()).push((key, value.into()));
    }
}

/// A possibly-absent span: `None` costs nothing on the hot path.
///
/// ```
/// # use tango_trace::TraceHandle;
/// let disabled = TraceHandle::disabled();
/// disabled.with(|s| s.add_row(100)); // no-op, no atomics touched
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Arc<SpanSlot>>);

impl TraceHandle {
    /// A handle that records nothing.
    pub fn disabled() -> TraceHandle {
        TraceHandle(None)
    }

    /// A handle recording into `slot`.
    pub fn enabled(slot: Arc<SpanSlot>) -> TraceHandle {
        TraceHandle(Some(slot))
    }

    /// Is this handle recording?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Run `f` against the slot if recording.
    pub fn with(&self, f: impl FnOnce(&SpanSlot)) {
        if let Some(s) = &self.0 {
            f(s);
        }
    }
}

/// Accumulates [`SpanSlot`]s during an execution and resolves them into
/// [`OpSpan`]s. Spans are created in post-order of the executed plan, so
/// child indices always precede their parent.
#[derive(Debug, Default)]
pub struct Collector {
    slots: Vec<Arc<SpanSlot>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Create the span for one operator. `children` are indices returned
    /// by earlier `span` calls. Returns the new span's index and its slot.
    pub fn span(
        &mut self,
        name: impl Into<String>,
        site: SpanSite,
        children: Vec<usize>,
    ) -> (usize, Arc<SpanSlot>) {
        let slot = Arc::new(SpanSlot {
            name: name.into(),
            site,
            children,
            ns: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            server_ns: AtomicU64::new(0),
            counters: std::sync::Mutex::new(Vec::new()),
            events: std::sync::Mutex::new(Vec::new()),
            annotations: std::sync::Mutex::new(Vec::new()),
        });
        self.slots.push(slot.clone());
        (self.slots.len() - 1, slot)
    }

    /// The live slot of a span created earlier in this execution.
    pub fn slot(&self, index: usize) -> &Arc<SpanSlot> {
        &self.slots[index]
    }

    /// Number of spans created so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no spans were created.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Freeze the collected slots into spans, computing each operator's
    /// exclusive time as its inclusive time minus its children's.
    pub fn finish(self) -> Vec<OpSpan> {
        let mut spans: Vec<OpSpan> = self
            .slots
            .iter()
            .map(|s| OpSpan {
                name: s.name.clone(),
                site: s.site,
                inclusive_us: s.ns.load(Ordering::Relaxed) as f64 / 1000.0,
                exclusive_us: 0.0,
                rows: s.rows.load(Ordering::Relaxed),
                bytes: s.bytes.load(Ordering::Relaxed),
                server_us: s.server_ns.load(Ordering::Relaxed) as f64 / 1000.0,
                counters: s.counters.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                events: s.events.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                annotations: s.annotations.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                children: s.children.clone(),
            })
            .collect();
        for i in 0..spans.len() {
            let child_sum: f64 = spans[i].children.iter().map(|&c| spans[c].inclusive_us).sum();
            spans[i].exclusive_us = (spans[i].inclusive_us - child_sum).max(0.0);
        }
        spans
    }
}

/// One operator's resolved measurements.
#[derive(Debug, Clone)]
pub struct OpSpan {
    /// Operator label, e.g. `TAGGR^M`.
    pub name: String,
    /// Evaluation site.
    pub site: SpanSite,
    /// Wall + wire time including children, µs.
    pub inclusive_us: f64,
    /// Wall + wire time excluding children, µs.
    pub exclusive_us: f64,
    /// Tuples produced.
    pub rows: u64,
    /// Bytes produced.
    pub bytes: u64,
    /// DBMS server-side compute time within this span, µs.
    pub server_us: f64,
    /// Operator-specific counters (name, value).
    pub counters: Vec<(&'static str, u64)>,
    /// Discrete events recorded while the operator ran, in order.
    pub events: Vec<SpanEvent>,
    /// Qualitative key/value annotations (e.g. `cache: hit`), in order.
    pub annotations: Vec<(&'static str, String)>,
    /// Indices of input spans.
    pub children: Vec<usize>,
}

impl OpSpan {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        use json::*;
        let mut o = Object::new();
        o.string("op", &self.name);
        o.string("site", self.site.name());
        o.number("inclusive_us", self.inclusive_us);
        o.number("exclusive_us", self.exclusive_us);
        o.number("rows", self.rows as f64);
        o.number("bytes", self.bytes as f64);
        o.number("server_us", self.server_us);
        if !self.annotations.is_empty() {
            let mut a = Object::new();
            for (k, v) in &self.annotations {
                a.string(k, v);
            }
            o.raw("annotations", &a.build());
        }
        if !self.counters.is_empty() {
            let mut c = Object::new();
            for (k, v) in &self.counters {
                c.number(k, *v as f64);
            }
            o.raw("counters", &c.build());
        }
        if !self.events.is_empty() {
            o.raw("events", &events_to_json(&self.events));
        }
        o.raw(
            "children",
            &format!(
                "[{}]",
                self.children.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
            ),
        );
        o.build()
    }
}

/// Serialize a span list as a JSON array (same order as collected, so
/// the `children` indices stay valid).
pub fn spans_to_json(spans: &[OpSpan]) -> String {
    format!("[{}]", spans.iter().map(OpSpan::to_json).collect::<Vec<_>>().join(","))
}

/// Serialize a list of span events as a JSON array of
/// `{"kind": ..., "detail": ...}` objects, in recording order.
pub fn events_to_json(events: &[SpanEvent]) -> String {
    let parts: Vec<String> = events
        .iter()
        .map(|e| {
            let mut o = json::Object::new();
            o.string("kind", &e.kind).string("detail", &e.detail);
            o.build()
        })
        .collect();
    format!("[{}]", parts.join(","))
}

/// Minimal JSON construction — just enough for trace reports, with
/// correct string escaping and locale-independent number formatting.
pub mod json {
    /// Escape a string for use inside a JSON string literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }

    /// Format a number the way JSON expects (no NaN/Inf, no trailing
    /// noise: integers stay integral, fractions keep two decimals).
    pub fn number(v: f64) -> String {
        if !v.is_finite() {
            return "null".to_string();
        }
        if v == v.trunc() && v.abs() < 9e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.2}")
        }
    }

    /// An in-order JSON object builder.
    #[derive(Debug, Default)]
    pub struct Object {
        parts: Vec<String>,
    }

    impl Object {
        /// An empty object.
        pub fn new() -> Object {
            Object::default()
        }

        /// Add a string field.
        pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
            self.parts.push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
            self
        }

        /// Add a numeric field.
        pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
            self.parts.push(format!("\"{}\":{}", escape(key), number(value)));
            self
        }

        /// Add a pre-serialized JSON value.
        pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
            self.parts.push(format!("\"{}\":{}", escape(key), json));
            self
        }

        /// Serialize the object.
        pub fn build(&self) -> String {
            format!("{{{}}}", self.parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_time_subtracts_children() {
        let mut c = Collector::new();
        let (leaf, s0) = c.span("SCAN", SpanSite::Dbms, vec![]);
        let (_, s1) = c.span("FILTER^M", SpanSite::Middleware, vec![leaf]);
        s0.add_time(Duration::from_micros(300));
        s1.add_time(Duration::from_micros(1000));
        s1.add_row(40);
        s1.add_row(60);
        let spans = Collector::finish(c);
        assert_eq!(spans[1].rows, 2);
        assert_eq!(spans[1].bytes, 100);
        assert!((spans[1].inclusive_us - 1000.0).abs() < 1.0);
        assert!((spans[1].exclusive_us - 700.0).abs() < 1.0);
        assert!((spans[0].exclusive_us - 300.0).abs() < 1.0);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        let mut called = false;
        h.with(|_| called = true);
        assert!(!called);
    }

    #[test]
    fn stopwatch_adds_wire_delta() {
        let sw = Stopwatch::start(Duration::from_millis(5));
        // pretend 7ms of wire were charged while we ran
        let t = sw.elapsed(Duration::from_millis(12));
        assert!(t >= Duration::from_millis(7));
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::number(4.0), "4");
        assert_eq!(json::number(4.5), "4.50");
        assert_eq!(json::number(f64::NAN), "null");
        let mut o = json::Object::new();
        o.string("op", "SORT^M").number("rows", 3.0);
        assert_eq!(o.build(), "{\"op\":\"SORT^M\",\"rows\":3}");
    }

    #[test]
    fn events_keep_order_and_serialize() {
        let mut c = Collector::new();
        let (_, s) = c.span("TRANSFER^M", SpanSite::Middleware, vec![]);
        s.add_event("fault", "ORA-03113 on round trip 4");
        s.add_event("retry", "attempt 2 after 2ms backoff");
        s.add_event("replan", "fragment re-planned in middleware");
        let spans = Collector::finish(c);
        assert_eq!(spans[0].events.len(), 3);
        assert_eq!(spans[0].events[0].kind, "fault");
        assert_eq!(spans[0].events[2].kind, "replan");
        let j = spans_to_json(&spans);
        assert!(j.contains("\"events\":[{\"kind\":\"fault\""), "{j}");
        assert!(j.contains("\"kind\":\"replan\""), "{j}");
        // spans without events omit the field entirely (golden stability)
        let mut c2 = Collector::new();
        c2.span("SORT^M", SpanSite::Middleware, vec![]);
        assert!(!spans_to_json(&Collector::finish(c2)).contains("events"));
    }

    #[test]
    fn spans_serialize_with_counters() {
        let mut c = Collector::new();
        let (_, s) = c.span("SORT^M", SpanSite::Middleware, vec![]);
        s.set_counters(vec![("buffered_rows", 10)]);
        let spans = Collector::finish(c);
        let j = spans_to_json(&spans);
        assert!(j.starts_with('['), "{j}");
        assert!(j.contains("\"counters\":{\"buffered_rows\":10}"), "{j}");
        assert!(j.contains("\"site\":\"middleware\""), "{j}");
    }
}
