//! # tango-minidb
//!
//! The conventional-DBMS substrate underneath the TANGO middleware.
//!
//! The paper ran on Oracle 8i accessed over JDBC; this crate plays that
//! role in-process so the whole system is self-contained and
//! deterministic. It is a *real* (small) relational engine, not a mock:
//!
//! * an SQL dialect with subqueries in `FROM`, `UNION`, `GROUP BY`,
//!   aggregate functions, `GREATEST`/`LEAST`, date literals, and
//!   Oracle-style optimizer hints (`/*+ USE_NL */`, `/*+ USE_MERGE */` —
//!   Query 4 of the paper forces DBMS join methods exactly this way),
//! * a heuristic planner (predicate pushdown, equi-join detection,
//!   hash/merge/nested-loop join selection, index scans),
//! * a materializing executor with its own operator set — intentionally
//!   separate from the middleware's pipelined `tango-xxl` cursors,
//! * a catalog with `ANALYZE`-collected statistics exposed both
//!   programmatically and through Oracle-style dictionary views
//!   (`USER_TABLES`, `USER_TAB_COLUMNS`, `USER_HISTOGRAMS`) that the
//!   middleware's Statistics Collector queries,
//! * a direct-path bulk loader (the `TRANSFER^D` fast path; a
//!   conventional INSERT-based path exists for the ablation),
//! * a **simulated client/server wire**: every row fetched by a client
//!   cursor is encoded, charged against a configurable link profile
//!   (round-trip latency × row prefetch, bandwidth), and decoded again —
//!   reproducing the transfer costs that drive the paper's middleware
//!   placement decisions, and
//! * a **fault-injection + retry layer** on that wire: a deterministic,
//!   seeded [`fault::FaultPlan`] can fail or slow any round trip, the
//!   connection retries transient failures with capped exponential
//!   backoff under a [`retry::RetryPolicy`], and every failure carries a
//!   [`error::ErrorClass`] (`Transient`/`Timeout`/`Fatal`/`Logic`) the
//!   middleware's degradation logic branches on.

pub mod ast;
pub mod catalog;
pub mod connection;
pub mod delta;
pub mod error;
pub mod exec;
pub mod fault;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod retry;
pub mod wire;

pub use catalog::{Database, DeltaSnapshot};
pub use connection::{Connection, DbCursor};
pub use delta::{DeltaOp, DeltaRecord, DEFAULT_DELTA_LOG_CAP};
pub use error::{DbError, ErrorClass, Result};
pub use fault::{Fault, FaultInjector, FaultPlan, WireFailure};
pub use retry::RetryPolicy;
pub use wire::{Link, LinkProfile, WireMode};
