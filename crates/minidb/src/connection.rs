//! The client-facing connection — the mini-DBMS's "JDBC".
//!
//! Everything the middleware does against the DBMS flows through here:
//! `query` (SELECT → server-side execution → wire-charged cursor),
//! `execute` (DDL/DML), and `load_direct` (the direct-path bulk load used
//! by the `TRANSFER^D` algorithm; `load_conventional` is the INSERT-based
//! alternative the paper calls "inefficient for large amounts of data").

use crate::catalog::Database;
use crate::error::{DbError, Result};
use crate::exec::run;
use crate::parser::parse;
use crate::planner::plan_select;
use crate::wire::Link;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tango_algebra::codec::{encode_tuple, Decoder};
use tango_algebra::{Relation, Schema, Tuple};

/// A connection to the database. Clones share storage and the wire.
#[derive(Clone)]
pub struct Connection {
    db: Database,
}

/// Outcome of a statement execution.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    pub rows_affected: u64,
    /// Server-side execution time of this statement.
    pub server_time: Duration,
}

impl Connection {
    pub fn new(db: Database) -> Self {
        Connection { db }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn link(&self) -> &Arc<Link> {
        self.db.link()
    }

    /// Execute a non-query statement.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        let start = Instant::now();
        let stmt = parse(sql)?;
        let rows = match stmt {
            crate::ast::Stmt::Select(_) | crate::ast::Stmt::Explain(_) => {
                return Err(DbError::Semantic("use query() for SELECT statements".into()))
            }
            crate::ast::Stmt::CreateTable { name, cols } => {
                let attrs = cols.into_iter().map(|(n, t)| tango_algebra::Attr::new(n, t)).collect();
                self.db.create_table(&name, Schema::with_inferred_period(attrs))?;
                0
            }
            crate::ast::Stmt::DropTable { name, if_exists } => {
                self.db.drop_table(&name, if_exists)?;
                0
            }
            crate::ast::Stmt::Insert { table, rows } => {
                // conventional path: each row crosses the wire as its own
                // statement round trip
                let bytes: u64 =
                    rows.iter().map(|r| r.iter().map(|v| v.byte_size() as u64).sum::<u64>()).sum();
                self.db.link().charge(rows.len() as u64, bytes);
                self.db.insert_rows(&table, rows.into_iter().map(Tuple::new).collect())?
            }
            crate::ast::Stmt::Delete { table, pred } => {
                self.db.link().charge(1, sql.len() as u64);
                self.db.delete_rows(&table, pred.as_ref())?
            }
            crate::ast::Stmt::Update { table, sets, pred } => {
                self.db.link().charge(1, sql.len() as u64);
                self.db.update_rows(&table, &sets, pred.as_ref())?
            }
            crate::ast::Stmt::Analyze { table } => {
                self.db.analyze(&table)?;
                0
            }
            crate::ast::Stmt::CreateIndex { name, table, col } => {
                self.db.create_index(&name, &table, &col)?;
                0
            }
        };
        let server_time = start.elapsed();
        self.db.add_server_ns(server_time.as_nanos() as u64);
        Ok(ExecOutcome { rows_affected: rows, server_time })
    }

    /// Execute a SELECT; the result stays "server-side" inside the cursor
    /// and crosses the simulated wire as the client fetches.
    pub fn query(&self, sql: &str) -> Result<DbCursor> {
        let stmt = parse(sql)?;
        let s = match stmt {
            crate::ast::Stmt::Select(s) => s,
            crate::ast::Stmt::Explain(s) => {
                let inner = self.db.inner.read();
                let plan = plan_select(&s, &inner)?;
                let schema = std::sync::Arc::new(Schema::new(vec![tango_algebra::Attr::new(
                    "PLAN",
                    tango_algebra::Type::Str,
                )]));
                let rows: Vec<Tuple> = plan
                    .render()
                    .lines()
                    .map(|l| Tuple::new(vec![tango_algebra::Value::Str(l.to_string())]))
                    .collect();
                let rel = Relation::new(schema, rows);
                return Ok(DbCursor::new(rel, self.db.link().clone(), Duration::ZERO));
            }
            _ => return Err(DbError::Semantic("query() requires a SELECT".into())),
        };
        let start = Instant::now();
        let result = {
            let inner = self.db.inner.read();
            let plan = plan_select(&s, &inner)?;
            run(&plan, &inner)?
        };
        let server_time = start.elapsed();
        self.db.add_server_ns(server_time.as_nanos() as u64);
        Ok(DbCursor::new(result, self.db.link().clone(), server_time))
    }

    /// Convenience: run a SELECT and materialize everything client-side
    /// (wire charges still apply).
    pub fn query_all(&self, sql: &str) -> Result<Relation> {
        let mut c = self.query(sql)?;
        let schema = c.schema().clone();
        let mut rows = Vec::new();
        while let Some(t) = c.fetch()? {
            rows.push(t);
        }
        Ok(Relation::new(schema, rows))
    }

    /// Direct-path bulk load (Oracle SQL*Loader style): creates the table
    /// sized to the data, ships all rows across the wire in bulk (no
    /// per-row statement round trips), and writes them straight into the
    /// heap.
    pub fn load_direct(&self, table: &str, schema: Schema, rows: Vec<Tuple>) -> Result<Duration> {
        let start = Instant::now();
        self.db.create_table(table, schema)?;
        // one round trip to set up the load plus bulk payload
        let mut buf = Vec::new();
        for r in &rows {
            encode_tuple(r, &mut buf);
        }
        let wire = self.db.link().charge(1, buf.len() as u64);
        // the server decodes the stream into the heap
        let mut decoder = Decoder::new(&buf);
        let mut decoded = Vec::with_capacity(rows.len());
        while !decoder.is_done() {
            decoded.push(decoder.decode_tuple()?);
        }
        self.db.insert_rows(table, decoded)?;
        let server_time = start.elapsed();
        self.db.add_server_ns(server_time.as_nanos() as u64);
        Ok(wire + server_time)
    }

    /// Conventional-path load: CREATE TABLE then one INSERT statement per
    /// batch of rows. Kept for the loader ablation.
    pub fn load_conventional(
        &self,
        table: &str,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Duration> {
        let start = Instant::now();
        self.db.create_table(table, schema)?;
        let bytes: u64 = rows.iter().map(|r| r.byte_size() as u64).sum();
        // one statement round trip per row, like a naive INSERT loop
        let wire = self.db.link().charge(rows.len().max(1) as u64, bytes);
        self.db.insert_rows(table, rows)?;
        let server_time = start.elapsed();
        self.db.add_server_ns(server_time.as_nanos() as u64);
        Ok(wire + server_time)
    }

    pub fn table_schema(&self, name: &str) -> Option<Schema> {
        self.db.table_schema(name)
    }

    pub fn table_stats(&self, name: &str) -> Option<tango_stats::RelationStats> {
        self.db.table_stats(name)
    }
}

/// A client-side cursor over a server-side result. Rows are encoded on
/// the "server", charged to the link in prefetch-sized batches, and
/// decoded on the "client" — like a JDBC result set with row prefetch.
pub struct DbCursor {
    schema: Arc<Schema>,
    /// Remaining server-side rows (front is next).
    server_rows: std::vec::IntoIter<Tuple>,
    /// Client-side buffer of decoded rows.
    client_buf: std::collections::VecDeque<Tuple>,
    link: Arc<Link>,
    /// Wire time charged by this cursor so far.
    wire_time: Duration,
    /// Server execution time for the producing statement.
    server_time: Duration,
}

impl DbCursor {
    fn new(result: Relation, link: Arc<Link>, server_time: Duration) -> Self {
        let schema = result.schema().clone();
        DbCursor {
            schema,
            server_rows: result.into_tuples().into_iter(),
            client_buf: std::collections::VecDeque::new(),
            link,
            wire_time: Duration::ZERO,
            server_time,
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn server_time(&self) -> Duration {
        self.server_time
    }

    pub fn wire_time(&self) -> Duration {
        self.wire_time
    }

    /// Fetch the next row, pulling a prefetch batch across the wire when
    /// the client buffer is empty.
    pub fn fetch(&mut self) -> Result<Option<Tuple>> {
        if self.client_buf.is_empty() {
            let prefetch = self.link.profile().row_prefetch.max(1);
            let mut buf = Vec::new();
            let mut n = 0u64;
            for _ in 0..prefetch {
                match self.server_rows.next() {
                    Some(t) => {
                        encode_tuple(&t, &mut buf);
                        n += 1;
                    }
                    None => break,
                }
            }
            if n == 0 {
                return Ok(None);
            }
            self.wire_time += self.link.charge(1, buf.len() as u64);
            let mut d = Decoder::new(&buf);
            while !d.is_done() {
                self.client_buf.push_back(d.decode_tuple()?);
            }
        }
        Ok(self.client_buf.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{LinkProfile, WireMode};
    use tango_algebra::{tup, Attr, Type, Value};

    fn conn() -> Connection {
        let c = Connection::new(Database::in_memory());
        c.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        c.execute(
            "INSERT INTO POSITION VALUES \
             (1, 'Tom', 2, 20), (1, 'Jane', 5, 25), (2, 'Tom', 5, 10)",
        )
        .unwrap();
        c
    }

    #[test]
    fn end_to_end_query() {
        let c = conn();
        let r = c.query_all("SELECT EmpName FROM POSITION WHERE PosID = 1 ORDER BY T1").unwrap();
        assert_eq!(r.tuples(), &[tup!["Tom"], tup!["Jane"]]);
    }

    #[test]
    fn create_table_infers_period() {
        let c = conn();
        let schema = c.table_schema("POSITION").unwrap();
        assert!(schema.is_temporal());
    }

    /// The DBMS-side temporal aggregation: the constant-period SQL the
    /// Translator-To-SQL emits for `TAGGR^D` must produce Figure 3(c).
    #[test]
    fn taggr_via_sql_matches_figure3c() {
        let c = conn();
        let sql = "SELECT cp.g AS PosID, cp.ts AS T1, cp.te AS T2, COUNT(*) AS CNT \
            FROM (SELECT p1.g g, p1.t ts, MIN(p2.t) te \
                  FROM (SELECT DISTINCT PosID g, T1 t FROM POSITION \
                        UNION SELECT DISTINCT PosID, T2 FROM POSITION) p1, \
                       (SELECT DISTINCT PosID g, T1 t FROM POSITION \
                        UNION SELECT DISTINCT PosID, T2 FROM POSITION) p2 \
                  WHERE p1.g = p2.g AND p2.t > p1.t \
                  GROUP BY p1.g, p1.t) cp, \
                 POSITION r \
            WHERE r.PosID = cp.g AND r.T1 <= cp.ts AND r.T2 >= cp.te \
            GROUP BY cp.g, cp.ts, cp.te \
            ORDER BY PosID, T1";
        let r = c.query_all(sql).unwrap();
        assert_eq!(
            r.tuples(),
            &[tup![1, 2, 5, 1], tup![1, 5, 20, 2], tup![1, 20, 25, 1], tup![2, 5, 10, 1],]
        );
    }

    #[test]
    fn wire_is_charged_per_prefetch_batch() {
        let db = Database::new(Link::new(LinkProfile {
            roundtrip_latency_us: 1000.0,
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 2,
            mode: WireMode::Virtual,
        }));
        let c = Connection::new(db);
        c.execute("CREATE TABLE T (A INT)").unwrap();
        c.execute("INSERT INTO T VALUES (1), (2), (3), (4), (5)").unwrap();
        c.link().reset();
        let mut cur = c.query("SELECT A FROM T").unwrap();
        let mut n = 0;
        while cur.fetch().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        // 5 rows at prefetch 2 -> 3 round trips of 1ms
        assert_eq!(cur.wire_time(), Duration::from_millis(3));
    }

    #[test]
    fn direct_load_beats_conventional_on_wire() {
        let mk = || {
            Connection::new(Database::new(Link::new(LinkProfile {
                roundtrip_latency_us: 500.0,
                bytes_per_sec: 1e6,
                row_prefetch: 10,
                mode: WireMode::Virtual,
            })))
        };
        let schema = Schema::new(vec![Attr::new("A", Type::Int)]);
        let rows: Vec<Tuple> = (0..1000).map(|i| tup![i]).collect();

        let c1 = mk();
        c1.load_direct("T", schema.clone(), rows.clone()).unwrap();
        let direct_wire = c1.link().total();

        let c2 = mk();
        c2.load_conventional("T", schema, rows).unwrap();
        let conv_wire = c2.link().total();

        assert!(
            direct_wire < conv_wire / 10,
            "direct path should avoid per-row round trips: {direct_wire:?} vs {conv_wire:?}"
        );
    }

    #[test]
    fn loaded_table_is_queryable_and_dropped() {
        let c = conn();
        let schema = Schema::new(vec![Attr::new("X", Type::Int)]);
        c.load_direct("TMP1", schema, vec![tup![7]]).unwrap();
        let r = c.query_all("SELECT X FROM TMP1").unwrap();
        assert_eq!(r.tuples()[0][0], Value::Int(7));
        c.execute("DROP TABLE TMP1").unwrap();
        assert!(c.query("SELECT X FROM TMP1").is_err());
    }
}
