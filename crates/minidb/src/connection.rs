//! The client-facing connection — the mini-DBMS's "JDBC".
//!
//! Everything the middleware does against the DBMS flows through here:
//! `query` (SELECT → server-side execution → wire-charged cursor),
//! `execute` (DDL/DML), and `load_direct` (the direct-path bulk load used
//! by the `TRANSFER^D` algorithm; `load_conventional` is the INSERT-based
//! alternative the paper calls "inefficient for large amounts of data").
//!
//! Two resilience mechanisms live here:
//!
//! * every wire transfer goes through a retry loop driven by the
//!   connection's [`RetryPolicy`] — transient faults are retried with
//!   capped exponential backoff (charged to the virtual wire, not
//!   slept), fatal faults surface immediately, and an optional
//!   per-statement timeout bounds the total time a statement may spend;
//! * wire time, retries and faults are metered **per connection** (a
//!   [`Connection`] and its clones share one meter; independent
//!   `Connection::new` sessions get independent meters), so concurrent
//!   sessions sharing one [`Link`] no longer read each other's charges.

use crate::catalog::Database;
use crate::error::{DbError, Result};
use crate::exec::run;
use crate::parser::parse;
use crate::planner::plan_select;
use crate::retry::RetryPolicy;
use crate::wire::Link;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tango_algebra::codec::{encode_tuple, Decoder};
use tango_algebra::{Relation, Schema, Tuple};

/// Per-connection wire accounting. Cheap atomics; shared by a
/// connection and every cursor (and clone) it spawns.
#[derive(Debug, Default)]
pub(crate) struct ConnStats {
    wire_ns: AtomicU64,
    retries: AtomicU64,
    faults: AtomicU64,
    timeouts: AtomicU64,
}

impl ConnStats {
    fn add_wire(&self, d: Duration) {
        self.wire_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Run one wire transfer under a retry policy: transient failures are
/// retried with deterministic backoff (charged to both the link clock
/// and the per-connection meter), fatal failures and exhausted budgets
/// surface as classified [`DbError`]s. `elapsed_before` is statement
/// time already consumed, counted against any statement timeout.
/// Returns the total time this transfer consumed (charges + failed
/// attempts + backoffs).
fn retrying_transfer(
    link: &Link,
    policy: &RetryPolicy,
    stats: &ConnStats,
    elapsed_before: Duration,
    roundtrips: u64,
    bytes: u64,
) -> Result<Duration> {
    let over_budget = |spent: Duration| match policy.statement_timeout {
        Some(t) => elapsed_before + spent > t,
        None => false,
    };
    let mut attempts = 0u32;
    let mut spent = Duration::ZERO;
    loop {
        attempts += 1;
        match link.transfer(roundtrips, bytes) {
            Ok(d) => {
                spent += d;
                stats.add_wire(d);
                if over_budget(spent) {
                    stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(DbError::Timeout(format!(
                        "statement exceeded {:?}",
                        policy.statement_timeout.unwrap_or_default()
                    )));
                }
                return Ok(spent);
            }
            Err(w) => {
                spent += w.charged;
                stats.add_wire(w.charged);
                stats.faults.fetch_add(1, Ordering::Relaxed);
                let e = DbError::from(w);
                if !policy.should_retry(&e, attempts) {
                    if e.is_retryable() {
                        // transient, but the attempt budget is spent
                        return Err(DbError::Transient(format!(
                            "{e} (gave up after {attempts} attempts)"
                        )));
                    }
                    return Err(e);
                }
                if over_budget(spent) {
                    stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(DbError::Timeout(format!(
                        "statement exceeded {:?} while retrying ({e})",
                        policy.statement_timeout.unwrap_or_default()
                    )));
                }
                let backoff = policy.backoff_for(attempts);
                link.stall(backoff);
                stats.add_wire(backoff);
                spent += backoff;
                stats.retries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A connection to the database. Clones share storage, the wire, the
/// retry policy, and the per-connection wire meter; independent
/// sessions should call [`Connection::new`] separately.
#[derive(Clone)]
pub struct Connection {
    db: Database,
    retry: RetryPolicy,
    stats: Arc<ConnStats>,
}

/// Outcome of a statement execution.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    pub rows_affected: u64,
    /// Server-side execution time of this statement.
    pub server_time: Duration,
}

impl Connection {
    pub fn new(db: Database) -> Self {
        Connection { db, retry: RetryPolicy::default(), stats: Arc::new(ConnStats::default()) }
    }

    /// A connection with an explicit retry policy.
    pub fn with_retry_policy(db: Database, retry: RetryPolicy) -> Self {
        Connection { db, retry, stats: Arc::new(ConnStats::default()) }
    }

    /// Replace the retry policy (applies to this handle and future
    /// cursors; clones made earlier keep the policy they copied).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn link(&self) -> &Arc<Link> {
        self.db.link()
    }

    /// Wire time charged by this connection (and its clones/cursors)
    /// alone — unlike [`Link::total`], unaffected by other sessions on
    /// the same link.
    pub fn wire_time(&self) -> Duration {
        Duration::from_nanos(self.stats.wire_ns.load(Ordering::Relaxed))
    }

    /// Retries performed by this connection so far.
    pub fn wire_retries(&self) -> u64 {
        self.stats.retries.load(Ordering::Relaxed)
    }

    /// Wire faults observed by this connection so far.
    pub fn wire_faults(&self) -> u64 {
        self.stats.faults.load(Ordering::Relaxed)
    }

    /// Statement timeouts raised by this connection so far.
    pub fn wire_timeouts(&self) -> u64 {
        self.stats.timeouts.load(Ordering::Relaxed)
    }

    /// One retried-and-metered wire transfer (see [`retrying_transfer`]).
    fn wire_transfer(&self, elapsed: Duration, roundtrips: u64, bytes: u64) -> Result<Duration> {
        retrying_transfer(self.db.link(), &self.retry, &self.stats, elapsed, roundtrips, bytes)
    }

    /// Execute a non-query statement.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        let start = Instant::now();
        let stmt = parse(sql)?;
        let rows = match stmt {
            crate::ast::Stmt::Select(_) | crate::ast::Stmt::Explain(_) => {
                return Err(DbError::Semantic("use query() for SELECT statements".into()))
            }
            crate::ast::Stmt::CreateTable { name, cols } => {
                let attrs = cols.into_iter().map(|(n, t)| tango_algebra::Attr::new(n, t)).collect();
                self.db.create_table(&name, Schema::with_inferred_period(attrs))?;
                0
            }
            crate::ast::Stmt::DropTable { name, if_exists } => {
                self.db.drop_table(&name, if_exists)?;
                0
            }
            crate::ast::Stmt::Insert { table, rows } => {
                // conventional path: each row crosses the wire as its own
                // statement round trip
                let bytes: u64 =
                    rows.iter().map(|r| r.iter().map(|v| v.byte_size() as u64).sum::<u64>()).sum();
                self.wire_transfer(Duration::ZERO, rows.len() as u64, bytes)?;
                self.db.insert_rows(&table, rows.into_iter().map(Tuple::new).collect())?
            }
            crate::ast::Stmt::Delete { table, pred } => {
                self.wire_transfer(Duration::ZERO, 1, sql.len() as u64)?;
                self.db.delete_rows(&table, pred.as_ref())?
            }
            crate::ast::Stmt::Update { table, sets, pred } => {
                self.wire_transfer(Duration::ZERO, 1, sql.len() as u64)?;
                self.db.update_rows(&table, &sets, pred.as_ref())?
            }
            crate::ast::Stmt::Analyze { table } => {
                self.db.analyze(&table)?;
                0
            }
            crate::ast::Stmt::CreateIndex { name, table, col } => {
                self.db.create_index(&name, &table, &col)?;
                0
            }
        };
        let server_time = start.elapsed();
        self.db.add_server_ns(server_time.as_nanos() as u64);
        Ok(ExecOutcome { rows_affected: rows, server_time })
    }

    /// Execute a SELECT; the result stays "server-side" inside the cursor
    /// and crosses the simulated wire as the client fetches.
    pub fn query(&self, sql: &str) -> Result<DbCursor> {
        let stmt = parse(sql)?;
        let s = match stmt {
            crate::ast::Stmt::Select(s) => s,
            crate::ast::Stmt::Explain(s) => {
                let inner = self.db.inner.read();
                let plan = plan_select(&s, &inner)?;
                let schema = std::sync::Arc::new(Schema::new(vec![tango_algebra::Attr::new(
                    "PLAN",
                    tango_algebra::Type::Str,
                )]));
                let rows: Vec<Tuple> = plan
                    .render()
                    .lines()
                    .map(|l| Tuple::new(vec![tango_algebra::Value::Str(l.to_string())]))
                    .collect();
                let rel = Relation::new(schema, rows);
                return Ok(self.cursor(rel, Duration::ZERO, Duration::ZERO));
            }
            _ => return Err(DbError::Semantic("query() requires a SELECT".into())),
        };
        // statement-submission round trip (executeQuery), retried like
        // any transfer
        let submit = self.wire_transfer(Duration::ZERO, 1, sql.len() as u64)?;
        let start = Instant::now();
        let result = {
            let inner = self.db.inner.read();
            let plan = plan_select(&s, &inner)?;
            run(&plan, &inner)?
        };
        let server_time = start.elapsed();
        self.db.add_server_ns(server_time.as_nanos() as u64);
        Ok(self.cursor(result, server_time, submit + server_time))
    }

    fn cursor(&self, result: Relation, server_time: Duration, elapsed: Duration) -> DbCursor {
        DbCursor::new(
            result,
            self.db.link().clone(),
            server_time,
            self.retry,
            self.stats.clone(),
            elapsed,
        )
    }

    /// Convenience: run a SELECT and materialize everything client-side
    /// (wire charges still apply).
    pub fn query_all(&self, sql: &str) -> Result<Relation> {
        let mut c = self.query(sql)?;
        let schema = c.schema().clone();
        let mut rows = Vec::new();
        while let Some(t) = c.fetch()? {
            rows.push(t);
        }
        Ok(Relation::new(schema, rows))
    }

    /// Direct-path bulk load (Oracle SQL*Loader style): creates the table
    /// sized to the data, ships all rows across the wire in bulk (no
    /// per-row statement round trips), and writes them straight into the
    /// heap. A load whose transfer fails drops the half-created table
    /// before surfacing the error — no partial state survives.
    pub fn load_direct(&self, table: &str, schema: Schema, rows: Vec<Tuple>) -> Result<Duration> {
        let start = Instant::now();
        self.db.create_table(table, schema)?;
        // one round trip to set up the load plus bulk payload
        let mut buf = Vec::new();
        for r in &rows {
            encode_tuple(r, &mut buf);
        }
        let wire = match self.wire_transfer(Duration::ZERO, 1, buf.len() as u64) {
            Ok(w) => w,
            Err(e) => {
                let _ = self.db.drop_table(table, true);
                return Err(e);
            }
        };
        // the server decodes the stream into the heap
        let mut decoder = Decoder::new(&buf);
        let mut decoded = Vec::with_capacity(rows.len());
        while !decoder.is_done() {
            decoded.push(decoder.decode_tuple()?);
        }
        self.db.insert_rows(table, decoded)?;
        let server_time = start.elapsed();
        self.db.add_server_ns(server_time.as_nanos() as u64);
        Ok(wire + server_time)
    }

    /// Conventional-path load: CREATE TABLE then one INSERT statement per
    /// batch of rows. Kept for the loader ablation.
    pub fn load_conventional(
        &self,
        table: &str,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Duration> {
        let start = Instant::now();
        self.db.create_table(table, schema)?;
        let bytes: u64 = rows.iter().map(|r| r.byte_size() as u64).sum();
        // one statement round trip per row, like a naive INSERT loop
        let wire = match self.wire_transfer(Duration::ZERO, rows.len().max(1) as u64, bytes) {
            Ok(w) => w,
            Err(e) => {
                let _ = self.db.drop_table(table, true);
                return Err(e);
            }
        };
        self.db.insert_rows(table, rows)?;
        let server_time = start.elapsed();
        self.db.add_server_ns(server_time.as_nanos() as u64);
        Ok(wire + server_time)
    }

    pub fn table_schema(&self, name: &str) -> Option<Schema> {
        self.db.table_schema(name)
    }

    pub fn table_stats(&self, name: &str) -> Option<tango_stats::RelationStats> {
        self.db.table_stats(name)
    }

    /// Current write-version of a base table (`None` if it does not
    /// exist); see [`Database::table_version`]. Version checks are a
    /// client-side catalog peek, not a wire round trip — the middleware
    /// uses them to validate cached fragments before planning.
    pub fn table_version(&self, name: &str) -> Option<u64> {
        self.db.table_version(name)
    }

    /// Bytes of delta-log records a fragment snapshot over `name` at
    /// version `since` would have to replay; see
    /// [`Database::delta_bytes_since`]. A client-side catalog peek (no
    /// wire) — the middleware uses it to *price* refresh-by-delta before
    /// deciding to fetch anything.
    pub fn delta_bytes_since(&self, name: &str, since: u64) -> Option<u64> {
        self.db.delta_bytes_since(name, since)
    }

    /// Fetch the delta records each `(table, since)` request must replay
    /// plus a consistent all-table version vector, in one wire round
    /// trip charged with the records' encoded bytes (retried under the
    /// connection's [`RetryPolicy`] like any transfer). `Ok(None)` means
    /// the logs no longer cover a requested snapshot — the caller should
    /// fall back to a full refetch; `Err` is a wire failure and nothing
    /// was charged beyond the failed attempts.
    pub fn fetch_deltas_multi(
        &self,
        reqs: &[(String, u64)],
    ) -> Result<Option<crate::catalog::DeltaSnapshot>> {
        let start = Instant::now();
        let snap = self.db.deltas_since_multi(reqs);
        let bytes = snap.as_ref().map_or(0, |s| s.byte_size());
        // one request/response round trip carrying the tombstones (an
        // uncovered request still costs the empty round trip)
        self.wire_transfer(Duration::ZERO, 1, bytes)?;
        self.db.add_server_ns(start.elapsed().as_nanos() as u64);
        Ok(snap)
    }
}

/// A client-side cursor over a server-side result. Rows are encoded on
/// the "server", charged to the link in prefetch-sized batches, and
/// decoded on the "client" — like a JDBC result set with row prefetch.
/// Fetch batches are retried under the connection's [`RetryPolicy`]
/// (rows are buffered server-side, so re-requesting a batch is safe)
/// and count against its per-statement timeout.
pub struct DbCursor {
    schema: Arc<Schema>,
    /// Remaining server-side rows (front is next).
    server_rows: std::vec::IntoIter<Tuple>,
    /// Client-side buffer of decoded rows.
    client_buf: std::collections::VecDeque<Tuple>,
    link: Arc<Link>,
    /// Wire time charged by this cursor so far.
    wire_time: Duration,
    /// Server execution time for the producing statement.
    server_time: Duration,
    retry: RetryPolicy,
    stats: Arc<ConnStats>,
    /// Statement clock: submission + server + wire + backoff time
    /// consumed so far, checked against the policy's timeout.
    elapsed: Duration,
    /// Reusable wire-encoding buffer: one prefetch batch is encoded here
    /// per round trip, so its capacity is retained across trips.
    wire_buf: Vec<u8>,
}

impl DbCursor {
    fn new(
        result: Relation,
        link: Arc<Link>,
        server_time: Duration,
        retry: RetryPolicy,
        stats: Arc<ConnStats>,
        elapsed: Duration,
    ) -> Self {
        let schema = result.schema().clone();
        DbCursor {
            schema,
            server_rows: result.into_tuples().into_iter(),
            client_buf: std::collections::VecDeque::new(),
            link,
            wire_time: Duration::ZERO,
            server_time,
            retry,
            stats,
            elapsed,
            wire_buf: Vec::new(),
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn server_time(&self) -> Duration {
        self.server_time
    }

    pub fn wire_time(&self) -> Duration {
        self.wire_time
    }

    /// Total statement time consumed (submission + server + wire +
    /// backoffs) — what the per-statement timeout is measured against.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Encode the next prefetch batch into `wire_buf` and charge the
    /// round trip. Returns `false` at end of stream. On success the
    /// encoded rows sit in `self.wire_buf`, ready to decode.
    fn pull_prefetch(&mut self) -> Result<bool> {
        let prefetch = self.link.profile().row_prefetch.max(1);
        self.wire_buf.clear();
        let mut n = 0u64;
        for _ in 0..prefetch {
            match self.server_rows.next() {
                Some(t) => {
                    encode_tuple(&t, &mut self.wire_buf);
                    n += 1;
                }
                None => break,
            }
        }
        if n == 0 {
            return Ok(false);
        }
        let spent = retrying_transfer(
            &self.link,
            &self.retry,
            &self.stats,
            self.elapsed,
            1,
            self.wire_buf.len() as u64,
        )?;
        self.wire_time += spent;
        self.elapsed += spent;
        Ok(true)
    }

    /// Fetch the next row, pulling a prefetch batch across the wire when
    /// the client buffer is empty.
    pub fn fetch(&mut self) -> Result<Option<Tuple>> {
        if self.client_buf.is_empty() {
            if !self.pull_prefetch()? {
                return Ok(None);
            }
            let mut d = Decoder::new(&self.wire_buf);
            while !d.is_done() {
                self.client_buf.push_back(d.decode_tuple()?);
            }
        }
        Ok(self.client_buf.pop_front())
    }

    /// Fetch the next prefetch-aligned batch: everything currently
    /// buffered client-side, or one prefetch batch pulled across the
    /// wire and decoded straight into the returned vector. Wire charges
    /// and round-trip numbering are identical to calling
    /// [`DbCursor::fetch`] row by row — batching only changes how
    /// decoded rows are handed to the caller, so fault-injection
    /// scripts keyed on round-trip ordinals behave the same either way.
    pub fn fetch_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        if self.client_buf.is_empty() {
            if !self.pull_prefetch()? {
                return Ok(None);
            }
            let mut rows = Vec::with_capacity(self.link.profile().row_prefetch.max(1));
            let mut d = Decoder::new(&self.wire_buf);
            while !d.is_done() {
                rows.push(d.decode_tuple()?);
            }
            return Ok(Some(rows));
        }
        Ok(Some(self.client_buf.drain(..).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};
    use crate::wire::{LinkProfile, WireMode};
    use tango_algebra::{tup, Attr, Type, Value};

    fn conn() -> Connection {
        let c = Connection::new(Database::in_memory());
        c.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        c.execute(
            "INSERT INTO POSITION VALUES \
             (1, 'Tom', 2, 20), (1, 'Jane', 5, 25), (2, 'Tom', 5, 10)",
        )
        .unwrap();
        c
    }

    #[test]
    fn end_to_end_query() {
        let c = conn();
        let r = c.query_all("SELECT EmpName FROM POSITION WHERE PosID = 1 ORDER BY T1").unwrap();
        assert_eq!(r.tuples(), &[tup!["Tom"], tup!["Jane"]]);
    }

    #[test]
    fn create_table_infers_period() {
        let c = conn();
        let schema = c.table_schema("POSITION").unwrap();
        assert!(schema.is_temporal());
    }

    /// The DBMS-side temporal aggregation: the constant-period SQL the
    /// Translator-To-SQL emits for `TAGGR^D` must produce Figure 3(c).
    #[test]
    fn taggr_via_sql_matches_figure3c() {
        let c = conn();
        let sql = "SELECT cp.g AS PosID, cp.ts AS T1, cp.te AS T2, COUNT(*) AS CNT \
            FROM (SELECT p1.g g, p1.t ts, MIN(p2.t) te \
                  FROM (SELECT DISTINCT PosID g, T1 t FROM POSITION \
                        UNION SELECT DISTINCT PosID, T2 FROM POSITION) p1, \
                       (SELECT DISTINCT PosID g, T1 t FROM POSITION \
                        UNION SELECT DISTINCT PosID, T2 FROM POSITION) p2 \
                  WHERE p1.g = p2.g AND p2.t > p1.t \
                  GROUP BY p1.g, p1.t) cp, \
                 POSITION r \
            WHERE r.PosID = cp.g AND r.T1 <= cp.ts AND r.T2 >= cp.te \
            GROUP BY cp.g, cp.ts, cp.te \
            ORDER BY PosID, T1";
        let r = c.query_all(sql).unwrap();
        assert_eq!(
            r.tuples(),
            &[tup![1, 2, 5, 1], tup![1, 5, 20, 2], tup![1, 20, 25, 1], tup![2, 5, 10, 1],]
        );
    }

    #[test]
    fn wire_is_charged_per_prefetch_batch() {
        let db = Database::new(Link::new(LinkProfile {
            roundtrip_latency_us: 1000.0,
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 2,
            mode: WireMode::Virtual,
        }));
        let c = Connection::new(db);
        c.execute("CREATE TABLE T (A INT)").unwrap();
        c.execute("INSERT INTO T VALUES (1), (2), (3), (4), (5)").unwrap();
        c.link().reset();
        let mut cur = c.query("SELECT A FROM T").unwrap();
        let mut n = 0;
        while cur.fetch().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        // 5 rows at prefetch 2 -> 3 round trips of 1ms
        assert_eq!(cur.wire_time(), Duration::from_millis(3));
    }

    #[test]
    fn batch_fetch_charges_like_row_fetch() {
        let db = Database::new(Link::new(LinkProfile {
            roundtrip_latency_us: 1000.0,
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 2,
            mode: WireMode::Virtual,
        }));
        let c = Connection::new(db);
        c.execute("CREATE TABLE T (A INT)").unwrap();
        c.execute("INSERT INTO T VALUES (1), (2), (3), (4), (5)").unwrap();
        c.link().reset();
        let mut cur = c.query("SELECT A FROM T").unwrap();
        let mut sizes = Vec::new();
        while let Some(batch) = cur.fetch_batch().unwrap() {
            sizes.push(batch.len());
        }
        // batches are prefetch-aligned and the wire charge is identical
        // to the row-at-a-time fetch of the test above
        assert_eq!(sizes, vec![2, 2, 1]);
        assert_eq!(cur.wire_time(), Duration::from_millis(3));
    }

    #[test]
    fn direct_load_beats_conventional_on_wire() {
        let mk = || {
            Connection::new(Database::new(Link::new(LinkProfile {
                roundtrip_latency_us: 500.0,
                bytes_per_sec: 1e6,
                row_prefetch: 10,
                mode: WireMode::Virtual,
            })))
        };
        let schema = Schema::new(vec![Attr::new("A", Type::Int)]);
        let rows: Vec<Tuple> = (0..1000).map(|i| tup![i]).collect();

        let c1 = mk();
        c1.load_direct("T", schema.clone(), rows.clone()).unwrap();
        let direct_wire = c1.link().total();

        let c2 = mk();
        c2.load_conventional("T", schema, rows).unwrap();
        let conv_wire = c2.link().total();

        assert!(
            direct_wire < conv_wire / 10,
            "direct path should avoid per-row round trips: {direct_wire:?} vs {conv_wire:?}"
        );
    }

    #[test]
    fn loaded_table_is_queryable_and_dropped() {
        let c = conn();
        let schema = Schema::new(vec![Attr::new("X", Type::Int)]);
        c.load_direct("TMP1", schema, vec![tup![7]]).unwrap();
        let r = c.query_all("SELECT X FROM TMP1").unwrap();
        assert_eq!(r.tuples()[0][0], Value::Int(7));
        c.execute("DROP TABLE TMP1").unwrap();
        assert!(c.query("SELECT X FROM TMP1").is_err());
    }

    #[test]
    fn transient_faults_are_retried_transparently() {
        let c = conn();
        // fail the next two round trips; the default policy retries
        let rt = c.link().roundtrips();
        c.link().set_injector(Arc::new(FaultPlan::scripted([
            (rt + 1, Fault::Transient("blip".into())),
            (rt + 2, Fault::Disconnect),
        ])));
        let r = c.query_all("SELECT EmpName FROM POSITION WHERE PosID = 1 ORDER BY T1").unwrap();
        c.link().clear_injector();
        assert_eq!(r.tuples(), &[tup!["Tom"], tup!["Jane"]]);
        assert_eq!(c.wire_faults(), 2);
        assert_eq!(c.wire_retries(), 2);
    }

    #[test]
    fn fatal_faults_surface_without_retry() {
        let c = conn();
        let rt = c.link().roundtrips();
        c.link().set_injector(Arc::new(FaultPlan::scripted([(
            rt + 1,
            Fault::Fatal("ORA-00600: internal error".into()),
        )])));
        let err = c.query("SELECT EmpName FROM POSITION").map(|_| ()).unwrap_err();
        c.link().clear_injector();
        assert_eq!(err.class(), crate::error::ErrorClass::Fatal);
        assert_eq!(c.wire_retries(), 0, "fatal errors must not be retried");
    }

    #[test]
    fn exhausted_retries_surface_as_transient() {
        let mut c = conn();
        c.set_retry_policy(RetryPolicy { max_attempts: 2, ..RetryPolicy::default() });
        // every round trip fails: 2 attempts, then give up
        c.link().set_injector(Arc::new(FaultPlan::random(1, 1.0)));
        let err = c.query("SELECT EmpName FROM POSITION").map(|_| ()).unwrap_err();
        c.link().clear_injector();
        assert_eq!(err.class(), crate::error::ErrorClass::Transient);
        assert!(err.to_string().contains("gave up after 2 attempts"), "{err}");
        assert_eq!(c.wire_retries(), 1);
    }

    #[test]
    fn statement_timeout_fires_on_throttled_link() {
        let db = Database::new(Link::new(LinkProfile {
            roundtrip_latency_us: 10_000.0, // 10ms per round trip
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 1,
            mode: WireMode::Virtual,
        }));
        let mut c = Connection::new(db);
        c.execute("CREATE TABLE T (A INT)").unwrap();
        c.execute("INSERT INTO T VALUES (1), (2), (3), (4), (5)").unwrap();
        c.set_retry_policy(RetryPolicy::default().with_timeout(Duration::from_millis(25)));
        let mut cur = c.query("SELECT A FROM T").unwrap();
        let mut err = None;
        loop {
            match cur.fetch() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let err = err.expect("5 fetch round trips at 10ms must exceed a 25ms budget");
        assert_eq!(err.class(), crate::error::ErrorClass::Timeout);
        assert_eq!(c.wire_timeouts(), 1);
    }

    #[test]
    fn clones_share_the_meter_but_fresh_connections_do_not() {
        let db = Database::new(Link::new(LinkProfile {
            roundtrip_latency_us: 1000.0,
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 10,
            mode: WireMode::Virtual,
        }));
        let a = Connection::new(db.clone());
        a.execute("CREATE TABLE T (A INT)").unwrap();
        a.execute("INSERT INTO T VALUES (1)").unwrap();
        let a2 = a.clone();
        let before = a.wire_time();
        a2.query_all("SELECT A FROM T").unwrap();
        assert!(a.wire_time() > before, "clone charges the shared meter");

        let b = Connection::new(db);
        assert_eq!(b.wire_time(), Duration::ZERO, "fresh session starts a fresh meter");
        assert!(b.link().total() > Duration::ZERO, "the link clock is still shared");
    }
}
