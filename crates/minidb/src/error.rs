//! Error type for the mini-DBMS.

use std::fmt;
use tango_algebra::AlgebraError;

#[derive(Debug, Clone)]
pub enum DbError {
    /// Lexical or syntactic error with a position hint.
    Parse { msg: String, near: String },
    /// Unknown table.
    NoSuchTable(String),
    /// Table already exists.
    TableExists(String),
    /// Semantic error (unknown column, arity mismatch, ...).
    Semantic(String),
    /// Expression-evaluation failure.
    Algebra(AlgebraError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { msg, near } => write!(f, "SQL parse error: {msg} (near '{near}')"),
            DbError::NoSuchTable(t) => write!(f, "table or view does not exist: {t}"),
            DbError::TableExists(t) => write!(f, "name is already used by an existing object: {t}"),
            DbError::Semantic(m) => write!(f, "{m}"),
            DbError::Algebra(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<AlgebraError> for DbError {
    fn from(e: AlgebraError) -> Self {
        DbError::Algebra(e)
    }
}

pub type Result<T> = std::result::Result<T, DbError>;
