//! Error type for the mini-DBMS, with the failure taxonomy the retry
//! layer keys on: every [`DbError`] classifies as [`ErrorClass::Transient`]
//! (retry may help), [`ErrorClass::Timeout`] (budget exceeded, do not
//! retry), [`ErrorClass::Fatal`] (retry cannot help), or
//! [`ErrorClass::Logic`] (the statement itself is wrong).

use std::fmt;
use tango_algebra::AlgebraError;

use crate::fault::WireFailure;

/// Coarse failure classification driving retry and re-plan decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// A passing condition (dropped connection, lost packet); the same
    /// request may succeed if retried.
    Transient,
    /// The per-statement time budget was exceeded. Not retried by the
    /// connection (the budget is already spent), but the engine may
    /// still re-plan around it.
    Timeout,
    /// Retrying is pointless; surface the failure.
    Fatal,
    /// The statement or schema is wrong (parse/semantic errors); not a
    /// wire condition at all.
    Logic,
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Timeout => "timeout",
            ErrorClass::Fatal => "fatal",
            ErrorClass::Logic => "logic",
        })
    }
}

#[derive(Debug, Clone)]
pub enum DbError {
    /// Lexical or syntactic error with a position hint.
    Parse { msg: String, near: String },
    /// Unknown table.
    NoSuchTable(String),
    /// Table already exists.
    TableExists(String),
    /// Semantic error (unknown column, arity mismatch, ...).
    Semantic(String),
    /// Expression-evaluation failure.
    Algebra(AlgebraError),
    /// Retryable wire failure (connection drop, transient link error).
    Transient(String),
    /// Non-retryable wire failure.
    Fatal(String),
    /// The statement exceeded its time budget.
    Timeout(String),
}

impl DbError {
    /// The failure class the retry policy and the engine's degradation
    /// logic branch on.
    pub fn class(&self) -> ErrorClass {
        match self {
            DbError::Transient(_) => ErrorClass::Transient,
            DbError::Fatal(_) => ErrorClass::Fatal,
            DbError::Timeout(_) => ErrorClass::Timeout,
            _ => ErrorClass::Logic,
        }
    }

    /// Whether a retry of the same request may succeed.
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { msg, near } => write!(f, "SQL parse error: {msg} (near '{near}')"),
            DbError::NoSuchTable(t) => write!(f, "table or view does not exist: {t}"),
            DbError::TableExists(t) => write!(f, "name is already used by an existing object: {t}"),
            DbError::Semantic(m) => write!(f, "{m}"),
            DbError::Algebra(e) => write!(f, "{e}"),
            DbError::Transient(m) => write!(f, "transient wire failure: {m}"),
            DbError::Fatal(m) => write!(f, "fatal wire failure: {m}"),
            DbError::Timeout(m) => write!(f, "statement timeout: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<AlgebraError> for DbError {
    fn from(e: AlgebraError) -> Self {
        DbError::Algebra(e)
    }
}

impl From<WireFailure> for DbError {
    fn from(w: WireFailure) -> Self {
        if w.fatal {
            DbError::Fatal(w.msg)
        } else {
            DbError::Transient(w.msg)
        }
    }
}

pub type Result<T> = std::result::Result<T, DbError>;
