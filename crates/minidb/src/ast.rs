//! SQL abstract syntax.

use tango_algebra::{AggFunc, Expr, Type, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Select(SelectStmt),
    /// `EXPLAIN SELECT ...` — returns the physical plan as text rows.
    Explain(SelectStmt),
    CreateTable {
        name: String,
        cols: Vec<(String, Type)>,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Value>>,
    },
    Delete {
        table: String,
        pred: Option<Expr>,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        pred: Option<Expr>,
    },
    Analyze {
        table: String,
    },
    CreateIndex {
        name: String,
        table: String,
        col: String,
    },
}

/// Join-method hints, Oracle style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinHint {
    UseNl,
    UseMerge,
    UseHash,
}

/// One `SELECT` block (set operations chain blocks together).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `VALIDTIME SELECT ...` — sequenced temporal semantics. The
    /// mini-DBMS itself rejects such statements (a conventional DBMS has
    /// no temporal support); the TANGO middleware parses them through
    /// this same grammar and takes over.
    pub validtime: bool,
    /// `VALIDTIME COALESCE SELECT ...` — coalesce the temporal result
    /// (middleware semantics; the DBMS rejects it like any VALIDTIME).
    pub coalesce: bool,
    pub hint: Option<JoinHint>,
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_: Option<Expr>,
    pub group_by: Vec<String>,
    pub having: Option<Expr>,
    pub order_by: Vec<(String, bool)>,
    /// `UNION [ALL] <next block>`; ORDER BY of the last block applies to
    /// the whole union.
    pub set_op: Option<(SetOp, Box<SelectStmt>)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    UnionAll,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A scalar expression with optional alias.
    Expr { expr: Expr, alias: Option<String> },
    /// An aggregate call `F(arg)` / `COUNT(*)` with optional alias.
    Agg { func: AggFunc, arg: Option<Expr>, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    Table { name: String, alias: Option<String> },
    Subquery { query: Box<SelectStmt>, alias: String },
}

impl FromItem {
    /// The name this item is addressed by in qualified column references.
    pub fn binding_name(&self) -> &str {
        match self {
            FromItem::Table { name, alias } => alias.as_deref().unwrap_or(name),
            FromItem::Subquery { alias, .. } => alias,
        }
    }
}
