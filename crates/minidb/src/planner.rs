//! Heuristic query planner for the mini-DBMS.
//!
//! Classic System-R-lite pipeline: plan `FROM` items, push single-table
//! predicates down (converting to index scans where an index applies),
//! detect equi-join conditions, fold joins left-to-right choosing a join
//! method (hash by default, overridable with Oracle-style hints), then
//! aggregate / filter / project / dedup / sort.

use crate::ast::{FromItem, JoinHint, SelectItem, SelectStmt, SetOp};
use crate::catalog::{dictionary_view_schema, DbInner};
use crate::error::{DbError, Result};
use crate::exec::{AggItem, Plan, PlanOp};
use std::sync::Arc;
use tango_algebra::logical::{concat_schemas, infer_type};
use tango_algebra::{AggFunc, Attr, CmpOp, Expr, Schema, SortKey, SortSpec, Type, Value};

/// Plan a (possibly set-op-chained) SELECT.
pub fn plan_select(stmt: &SelectStmt, db: &DbInner) -> Result<Plan> {
    // Collect the UNION chain; the last block's ORDER BY applies globally.
    let mut blocks: Vec<&SelectStmt> = vec![stmt];
    let mut distinct_union = false;
    let mut cur = stmt;
    while let Some((op, next)) = &cur.set_op {
        if *op == SetOp::Union {
            distinct_union = true;
        }
        blocks.push(next);
        cur = next;
    }
    if blocks.len() == 1 {
        return plan_block(stmt, db, true);
    }
    let global_order = blocks.last().unwrap().order_by.clone();
    let mut plans = Vec::with_capacity(blocks.len());
    for b in &blocks {
        plans.push(plan_block(b, db, false)?);
    }
    let schema = plans[0].schema.clone();
    for p in &plans {
        if p.schema.len() != schema.len() {
            return Err(DbError::Semantic("UNION blocks must have equal arity".into()));
        }
    }
    let mut plan = Plan { op: PlanOp::UnionAll { inputs: plans }, schema: schema.clone() };
    if distinct_union {
        plan = Plan { op: PlanOp::Distinct { input: Box::new(plan) }, schema: schema.clone() };
    }
    if !global_order.is_empty() {
        plan = sort_plan(plan, &global_order)?;
    }
    Ok(plan)
}

fn sort_plan(input: Plan, order: &[(String, bool)]) -> Result<Plan> {
    let keys =
        SortSpec(order.iter().map(|(c, desc)| SortKey { col: c.clone(), desc: *desc }).collect());
    for k in &keys.0 {
        input
            .schema
            .index_of(&k.col)
            .map_err(|_| DbError::Semantic(format!("ORDER BY column not found: {}", k.col)))?;
    }
    let schema = input.schema.clone();
    Ok(Plan { op: PlanOp::Sort { keys, input: Box::new(input) }, schema })
}

fn plan_block(stmt: &SelectStmt, db: &DbInner, with_order: bool) -> Result<Plan> {
    if stmt.validtime {
        return Err(DbError::Semantic(
            "VALIDTIME is not supported by this DBMS (temporal SQL requires the middleware)".into(),
        ));
    }
    if stmt.from.is_empty() {
        return Err(DbError::Semantic("FROM clause required".into()));
    }
    // -- 1. plan FROM items, with schemas qualified by binding name
    let mut items: Vec<Plan> = Vec::with_capacity(stmt.from.len());
    for fi in &stmt.from {
        items.push(plan_from_item(fi, db)?);
    }

    // -- 2. classify WHERE conjuncts
    let conjuncts: Vec<Expr> = stmt
        .where_
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    let mut single: Vec<Vec<Expr>> = vec![Vec::new(); items.len()];
    let mut join_conds: Vec<(usize, String, usize, String)> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    'conj: for c in conjuncts {
        let cols = c.columns();
        let covering: Vec<usize> =
            (0..items.len()).filter(|&i| cols.iter().all(|col| items[i].schema.has(col))).collect();
        if covering.len() == 1 {
            single[covering[0]].push(c);
            continue;
        }
        // equi-join condition between two different items?
        if let Expr::Cmp(CmpOp::Eq, l, r) = &c {
            if let (Expr::Col { name: ln, .. }, Expr::Col { name: rn, .. }) =
                (l.as_ref(), r.as_ref())
            {
                let owner = |col: &str| -> Vec<usize> {
                    (0..items.len()).filter(|&i| items[i].schema.has(col)).collect()
                };
                let (lo, ro) = (owner(ln), owner(rn));
                for &a in &lo {
                    for &b in &ro {
                        if a != b {
                            join_conds.push((a, ln.clone(), b, rn.clone()));
                            continue 'conj;
                        }
                    }
                }
            }
        }
        residual.push(c);
    }

    // -- 3. push single-table predicates (index scan conversion inside)
    for (i, preds) in single.into_iter().enumerate() {
        if !preds.is_empty() {
            let item = items[i].clone();
            items[i] = push_predicates(item, preds, db)?;
        }
    }

    // -- 4. fold joins left to right
    let mut joined: Vec<usize> = vec![0];
    let mut cur = items[0].clone();
    #[allow(clippy::needless_range_loop)] // k also tags join_conds entries
    for k in 1..items.len() {
        let mut lkeys = Vec::new();
        let mut rkeys = Vec::new();
        for (a, lc, b, rc) in &join_conds {
            if joined.contains(a) && *b == k {
                lkeys.push(lc.clone());
                rkeys.push(rc.clone());
            } else if joined.contains(b) && *a == k {
                lkeys.push(rc.clone());
                rkeys.push(lc.clone());
            }
        }
        let right = items[k].clone();
        let schema = Arc::new(concat_schemas(&cur.schema, &right.schema));
        // USE_NL with an index on the inner join column becomes an index
        // nested-loop join (Oracle semantics); otherwise plain nested loops.
        if stmt.hint == Some(JoinHint::UseNl) && !lkeys.is_empty() {
            if let PlanOp::Scan { table } = &right.op {
                let bare_r = bare(&rkeys[0]).to_string();
                if db.index_on(table, &bare_r).is_some() {
                    let extra_keys = Expr::and_all(
                        lkeys
                            .iter()
                            .zip(&rkeys)
                            .skip(1)
                            .map(|(l, r)| Expr::eq(Expr::col(l.clone()), Expr::col(r.clone())))
                            .collect(),
                    );
                    let table = table.clone();
                    let mut p = Plan {
                        op: PlanOp::IndexNlJoin {
                            lkey: lkeys[0].clone(),
                            table,
                            col: bare_r,
                            left: Box::new(cur),
                        },
                        schema: schema.clone(),
                    };
                    if let Some(pred) = extra_keys {
                        p = Plan {
                            op: PlanOp::Filter { pred, input: Box::new(p) },
                            schema: schema.clone(),
                        };
                    }
                    cur = p;
                    joined.push(k);
                    // apply now-covered residual predicates
                    let mut remaining = Vec::new();
                    for c in residual {
                        if c.columns().iter().all(|col| cur.schema.has(col)) {
                            let schema = cur.schema.clone();
                            cur = Plan {
                                op: PlanOp::Filter { pred: c, input: Box::new(cur) },
                                schema,
                            };
                        } else {
                            remaining.push(c);
                        }
                    }
                    residual = remaining;
                    continue;
                }
            }
        }
        let op = match (stmt.hint, lkeys.is_empty()) {
            (Some(JoinHint::UseNl), _) | (None, true) => {
                // keys (if any) become a predicate for the nested loop
                let pred = Expr::and_all(
                    lkeys
                        .iter()
                        .zip(&rkeys)
                        .map(|(l, r)| Expr::eq(Expr::col(l.clone()), Expr::col(r.clone())))
                        .collect(),
                );
                PlanOp::NlJoin { pred, left: Box::new(cur), right: Box::new(right) }
            }
            (Some(JoinHint::UseMerge), false) => {
                PlanOp::MergeJoin { lkeys, rkeys, left: Box::new(cur), right: Box::new(right) }
            }
            _ => PlanOp::HashJoin { lkeys, rkeys, left: Box::new(cur), right: Box::new(right) },
        };
        cur = Plan { op, schema };
        joined.push(k);
        // apply residual predicates that are now fully covered
        let mut remaining = Vec::new();
        for c in residual {
            if c.columns().iter().all(|col| cur.schema.has(col)) {
                let schema = cur.schema.clone();
                cur = Plan { op: PlanOp::Filter { pred: c, input: Box::new(cur) }, schema };
            } else {
                remaining.push(c);
            }
        }
        residual = remaining;
    }
    if let Some(pred) = Expr::and_all(residual) {
        return Err(DbError::Semantic(format!("predicate references unknown columns: {pred}")));
    }

    // -- 5. aggregation or plain projection
    let has_agg = stmt.items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
    let mut plan = if has_agg || !stmt.group_by.is_empty() {
        plan_aggregate(stmt, cur)?
    } else {
        plan_projection(stmt, cur)?
    };

    // -- 6. DISTINCT
    if stmt.distinct {
        let schema = plan.schema.clone();
        plan = Plan { op: PlanOp::Distinct { input: Box::new(plan) }, schema };
    }

    // -- 7. ORDER BY: resolved against the output columns; SQL also
    // allows ordering by input columns that were projected away, in which
    // case the sort slides below the projection.
    if with_order && !stmt.order_by.is_empty() {
        match sort_plan(plan.clone(), &stmt.order_by) {
            Ok(p) => plan = p,
            Err(e) => {
                if let PlanOp::Project { items, input } = plan.op {
                    let sorted = sort_plan(*input, &stmt.order_by)?;
                    plan = Plan {
                        op: PlanOp::Project { items, input: Box::new(sorted) },
                        schema: plan.schema,
                    };
                } else {
                    return Err(e);
                }
            }
        }
    }
    Ok(plan)
}

fn plan_from_item(fi: &FromItem, db: &DbInner) -> Result<Plan> {
    match fi {
        FromItem::Table { name, alias } => {
            let base = if let Some(v) = dictionary_view_schema(name) {
                v
            } else {
                db.table(name)?.schema.as_ref().clone()
            };
            let binding = alias.as_deref().unwrap_or(name);
            Ok(Plan {
                op: PlanOp::Scan { table: name.clone() },
                schema: Arc::new(base.qualified(binding)),
            })
        }
        FromItem::Subquery { query, alias } => {
            let sub = plan_select(query, db)?;
            let schema = Arc::new(sub.schema.qualified(alias));
            Ok(Plan { op: PlanOp::Rename { input: Box::new(sub) }, schema })
        }
    }
}

/// Push predicates onto a scan, converting eligible bounds into an index
/// range scan when the scanned table has a matching index.
fn push_predicates(item: Plan, preds: Vec<Expr>, db: &DbInner) -> Result<Plan> {
    let mut preds = preds;
    let mut item = item;
    if let PlanOp::Scan { table } = &item.op {
        let table = table.clone();
        // find an indexed column constrained by some predicate:
        // (column, lower bound, upper bound), bounds carrying inclusivity
        type Bound = Option<(Value, bool)>;
        let mut chosen: Option<(String, Bound, Bound)> = None;
        let mut used = vec![false; preds.len()];
        for (pi, p) in preds.iter().enumerate() {
            if let Some((col, op, val)) = as_col_lit(p) {
                if db.index_on(&table, bare(&col)).is_some() {
                    let entry = chosen.get_or_insert((bare(&col).to_string(), None, None));
                    if entry.0.eq_ignore_ascii_case(bare(&col)) {
                        match op {
                            CmpOp::Eq => {
                                entry.1 = Some((val.clone(), true));
                                entry.2 = Some((val, true));
                                used[pi] = true;
                            }
                            CmpOp::Gt => {
                                entry.1 = Some((val, false));
                                used[pi] = true;
                            }
                            CmpOp::Ge => {
                                entry.1 = Some((val, true));
                                used[pi] = true;
                            }
                            CmpOp::Lt => {
                                entry.2 = Some((val, false));
                                used[pi] = true;
                            }
                            CmpOp::Le => {
                                entry.2 = Some((val, true));
                                used[pi] = true;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        if let Some((col, lo, hi)) = chosen {
            if lo.is_some() || hi.is_some() {
                let schema = item.schema.clone();
                item = Plan { op: PlanOp::IndexScan { table, col, lo, hi }, schema };
                preds = preds.into_iter().zip(used).filter(|(_, u)| !u).map(|(p, _)| p).collect();
            }
        }
    }
    if let Some(pred) = Expr::and_all(preds) {
        let schema = item.schema.clone();
        item = Plan { op: PlanOp::Filter { pred, input: Box::new(item) }, schema };
    }
    Ok(item)
}

fn bare(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

fn as_col_lit(e: &Expr) -> Option<(String, CmpOp, Value)> {
    if let Expr::Cmp(op, l, r) = e {
        match (l.as_ref(), r.as_ref()) {
            (Expr::Col { name, .. }, Expr::Lit(v)) => Some((name.clone(), *op, v.clone())),
            (Expr::Lit(v), Expr::Col { name, .. }) => Some((name.clone(), op.flip(), v.clone())),
            _ => None,
        }
    } else {
        None
    }
}

fn item_alias(item: &SelectItem, i: usize) -> String {
    match item {
        SelectItem::Star => "*".to_string(),
        SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| match expr {
            Expr::Col { name, .. } => bare(name).to_string(),
            _ => format!("EXPR_{}", i + 1),
        }),
        SelectItem::Agg { func, alias, .. } => {
            alias.clone().unwrap_or_else(|| format!("{}_{}", func.sql(), i + 1))
        }
    }
}

fn plan_projection(stmt: &SelectStmt, input: Plan) -> Result<Plan> {
    if stmt.items.len() == 1 && matches!(stmt.items[0], SelectItem::Star) {
        return Ok(input); // SELECT * — identity
    }
    let mut items: Vec<(Expr, String)> = Vec::new();
    for (i, it) in stmt.items.iter().enumerate() {
        match it {
            SelectItem::Star => {
                for a in input.schema.attrs() {
                    items.push((Expr::col(a.name.clone()), bare(&a.name).to_string()));
                }
            }
            SelectItem::Expr { expr, .. } => items.push((expr.clone(), item_alias(it, i))),
            SelectItem::Agg { .. } => {
                return Err(DbError::Semantic("aggregate without GROUP BY context".into()))
            }
        }
    }
    project_plan(input, items)
}

fn project_plan(input: Plan, items: Vec<(Expr, String)>) -> Result<Plan> {
    let mut attrs = Vec::with_capacity(items.len());
    for (e, alias) in &items {
        let ty = infer_type(e, &input.schema)?;
        attrs.push(Attr::new(alias.clone(), ty));
    }
    let schema = Arc::new(Schema::with_inferred_period(attrs));
    Ok(Plan { op: PlanOp::Project { items, input: Box::new(input) }, schema })
}

fn plan_aggregate(stmt: &SelectStmt, input: Plan) -> Result<Plan> {
    // aggregate items, with aliases
    let mut aggs: Vec<AggItem> = Vec::new();
    for (i, it) in stmt.items.iter().enumerate() {
        if let SelectItem::Agg { func, arg, .. } = it {
            aggs.push(AggItem { func: *func, arg: arg.clone(), alias: item_alias(it, i) });
        }
    }
    // HashAgg output: group columns (as written) then aggregates
    let mut attrs = Vec::new();
    for g in &stmt.group_by {
        let i = input
            .schema
            .index_of(g)
            .map_err(|_| DbError::Semantic(format!("GROUP BY column not found: {g}")))?;
        attrs.push(input.schema.attr(i).clone());
    }
    for a in &aggs {
        let ty = match (a.func, &a.arg) {
            (AggFunc::Count, _) => Type::Int,
            (AggFunc::Avg, _) => Type::Double,
            (_, Some(e)) => infer_type(e, &input.schema)?,
            (_, None) => Type::Int,
        };
        attrs.push(Attr::new(a.alias.clone(), ty));
    }
    let agg_schema = Arc::new(Schema::new(attrs));
    let mut plan = Plan {
        op: PlanOp::HashAgg { group_by: stmt.group_by.clone(), aggs, input: Box::new(input) },
        schema: agg_schema,
    };
    if let Some(h) = &stmt.having {
        let schema = plan.schema.clone();
        plan = Plan { op: PlanOp::Filter { pred: h.clone(), input: Box::new(plan) }, schema };
    }
    // final projection in SELECT-list order
    let mut items = Vec::new();
    for (i, it) in stmt.items.iter().enumerate() {
        let alias = item_alias(it, i);
        match it {
            SelectItem::Star => {
                return Err(DbError::Semantic("SELECT * cannot be combined with GROUP BY".into()))
            }
            SelectItem::Expr { expr, .. } => items.push((expr.clone(), alias)),
            SelectItem::Agg { .. } => items.push((Expr::col(alias.clone()), alias)),
        }
    }
    project_plan(plan, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::exec::run;
    use crate::parser::parse;
    use tango_algebra::{tup, Tuple};

    fn setup() -> Database {
        let db = Database::in_memory();
        let schema = Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("EmpName", Type::Str),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]);
        db.create_table("POSITION", schema).unwrap();
        db.insert_rows(
            "POSITION",
            vec![tup![1, "Tom", 2, 20], tup![1, "Jane", 5, 25], tup![2, "Tom", 5, 10]],
        )
        .unwrap();
        db
    }

    fn q(db: &Database, sql: &str) -> Vec<Tuple> {
        let crate::ast::Stmt::Select(s) = parse(sql).unwrap() else { panic!() };
        let inner = db.inner.read();
        let plan = plan_select(&s, &inner).unwrap();
        run(&plan, &inner).unwrap().into_tuples()
    }

    #[test]
    fn simple_select_where_order() {
        let db = setup();
        let rows = q(&db, "SELECT EmpName, T1 FROM POSITION WHERE PosID = 1 ORDER BY T1 DESC");
        assert_eq!(rows, vec![tup!["Jane", 5], tup!["Tom", 2]]);
    }

    #[test]
    fn self_join_with_alias() {
        let db = setup();
        let rows = q(
            &db,
            "SELECT A.EmpName, B.EmpName FROM POSITION A, POSITION B \
             WHERE A.PosID = B.PosID AND A.T1 < B.T1 ORDER BY A.EmpName",
        );
        assert_eq!(rows, vec![tup!["Tom", "Jane"]]);
    }

    #[test]
    fn group_by_count() {
        let db = setup();
        let rows = q(
            &db,
            "SELECT PosID, COUNT(*) AS C, MIN(T1) AS M FROM POSITION GROUP BY PosID ORDER BY PosID",
        );
        assert_eq!(rows, vec![tup![1, 2, 2], tup![2, 1, 5]]);
    }

    #[test]
    fn union_and_distinct() {
        let db = setup();
        let rows = q(&db, "SELECT T1 AS T FROM POSITION UNION SELECT T2 FROM POSITION ORDER BY T");
        // T1s: 2,5,5; T2s: 20,25,10 -> distinct sorted: 2,5,10,20,25
        assert_eq!(rows, vec![tup![2], tup![5], tup![10], tup![20], tup![25]]);
    }

    #[test]
    fn subquery_in_from() {
        let db = setup();
        let rows =
            q(&db, "SELECT X.E FROM (SELECT EmpName AS E, T1 FROM POSITION WHERE PosID = 2) X");
        assert_eq!(rows, vec![tup!["Tom"]]);
    }

    #[test]
    fn hint_forces_join_method() {
        let db = setup();
        let crate::ast::Stmt::Select(s) = parse(
            "SELECT /*+ USE_NL */ A.EmpName FROM POSITION A, POSITION B WHERE A.PosID = B.PosID",
        )
        .unwrap() else {
            panic!()
        };
        let inner = db.inner.read();
        let plan = plan_select(&s, &inner).unwrap();
        let mut found_nl = false;
        fn walk(p: &Plan, found: &mut bool) {
            if matches!(p.op, PlanOp::NlJoin { .. }) {
                *found = true;
            }
            match &p.op {
                PlanOp::Rename { input }
                | PlanOp::Filter { input, .. }
                | PlanOp::Project { input, .. }
                | PlanOp::Sort { input, .. }
                | PlanOp::HashAgg { input, .. }
                | PlanOp::Distinct { input } => walk(input, found),
                PlanOp::HashJoin { left, right, .. }
                | PlanOp::MergeJoin { left, right, .. }
                | PlanOp::NlJoin { left, right, .. } => {
                    walk(left, found);
                    walk(right, found);
                }
                PlanOp::UnionAll { inputs } => inputs.iter().for_each(|p| walk(p, found)),
                _ => {}
            }
        }
        walk(&plan, &mut found_nl);
        assert!(found_nl, "USE_NL hint must force a nested-loop join");
    }

    #[test]
    fn index_scan_used() {
        let db = setup();
        db.create_index("IX", "POSITION", "PosID").unwrap();
        let crate::ast::Stmt::Select(s) =
            parse("SELECT EmpName FROM POSITION WHERE PosID = 2").unwrap()
        else {
            panic!()
        };
        let inner = db.inner.read();
        let plan = plan_select(&s, &inner).unwrap();
        let uses_index = format!("{:?}", plan).contains("IndexScan");
        assert!(uses_index);
        let rows = run(&plan, &inner).unwrap();
        assert_eq!(rows.tuples(), &[tup!["Tom"]]);
    }

    #[test]
    fn use_nl_hint_with_index_probes_index() {
        let db = setup();
        db.create_index("IX", "POSITION", "PosID").unwrap();
        let crate::ast::Stmt::Select(s) = parse(
            "SELECT /*+ USE_NL */ A.EmpName, B.EmpName FROM POSITION A, POSITION B \
             WHERE A.PosID = B.PosID AND A.T1 < B.T1 ORDER BY A.EmpName",
        )
        .unwrap() else {
            panic!()
        };
        let inner = db.inner.read();
        let plan = plan_select(&s, &inner).unwrap();
        assert!(format!("{plan:?}").contains("IndexNlJoin"), "{plan:?}");
        let rows = run(&plan, &inner).unwrap();
        assert_eq!(rows.tuples(), &[tup!["Tom", "Jane"]]);
    }

    #[test]
    fn greatest_least_expression() {
        let db = setup();
        let rows = q(
            &db,
            "SELECT GREATEST(T1, 4) AS G, LEAST(T2, 21) AS L FROM POSITION WHERE EmpName = 'Jane'",
        );
        assert_eq!(rows, vec![tup![5, 21]]);
    }

    #[test]
    fn union_order_by_is_hoisted_globally() {
        let db = setup();
        let rows = q(
            &db,
            "SELECT T1 AS T FROM POSITION WHERE PosID = 1              UNION ALL SELECT T2 FROM POSITION WHERE PosID = 2 ORDER BY T DESC",
        );
        assert_eq!(rows, vec![tup![10], tup![5], tup![2]]);
    }

    #[test]
    fn index_range_scan_handles_between() {
        let db = setup();
        db.create_index("IT1", "POSITION", "T1").unwrap();
        let crate::ast::Stmt::Select(s) =
            parse("SELECT EmpName FROM POSITION WHERE T1 BETWEEN 3 AND 6 ORDER BY EmpName")
                .unwrap()
        else {
            panic!()
        };
        let inner = db.inner.read();
        let plan = plan_select(&s, &inner).unwrap();
        assert!(format!("{plan:?}").contains("IndexScan"), "{plan:?}");
        let rows = run(&plan, &inner).unwrap();
        assert_eq!(rows.tuples(), &[tup!["Jane"], tup!["Tom"]]);
    }

    #[test]
    fn cross_join_falls_back_to_nested_loops() {
        let db = setup();
        let rows = q(&db, "SELECT A.PosID, B.PosID FROM POSITION A, POSITION B");
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn residual_theta_predicates_apply_after_join() {
        let db = setup();
        let rows = q(
            &db,
            "SELECT A.EmpName, B.EmpName FROM POSITION A, POSITION B              WHERE A.PosID = B.PosID AND A.T2 < B.T2 ORDER BY A.EmpName",
        );
        assert_eq!(rows, vec![tup!["Tom", "Jane"]]);
    }

    #[test]
    fn dictionary_views_are_queryable() {
        let db = setup();
        db.analyze("POSITION").unwrap();
        let rows =
            q(&db, "SELECT TABLE_NAME, NUM_ROWS FROM USER_TABLES WHERE TABLE_NAME = 'POSITION'");
        assert_eq!(rows, vec![tup!["POSITION", 3]]);
        let rows = q(
            &db,
            "SELECT COLUMN_NAME, NUM_DISTINCT FROM USER_TAB_COLUMNS \
             WHERE TABLE_NAME = 'POSITION' AND COLUMN_NAME = 'POSID'",
        );
        assert_eq!(rows, vec![tup!["POSID", 2]]);
    }
}
