//! The simulated client/server wire.
//!
//! The paper's transfer costs come from JDBC round trips between the
//! middleware (a Java process) and Oracle. In this reproduction both ends
//! live in one process, so an in-process link charges each data movement
//! against a configurable profile: a fixed latency per round trip (one
//! round trip fetches `row_prefetch` rows — the JDBC row-prefetch setting
//! the paper discusses in Section 3.2) plus a bandwidth term over the
//! encoded bytes.
//!
//! By default charges accrue on a **virtual clock** (deterministic, free
//! to run), and experiment harnesses report wall time + virtual wire
//! time; `WireMode::Sleep` makes the link actually sleep instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Accumulate charges on a virtual clock (default).
    Virtual,
    /// Really sleep for each charge (makes wall-clock benchmarks include
    /// transfer time directly).
    Sleep,
}

/// Link cost model.
#[derive(Debug, Clone, Copy)]
pub struct LinkProfile {
    /// Fixed cost per client/server round trip (µs).
    pub roundtrip_latency_us: f64,
    /// Payload bandwidth (bytes per second).
    pub bytes_per_sec: f64,
    /// Rows fetched per round trip by a client cursor (JDBC row prefetch).
    pub row_prefetch: usize,
    pub mode: WireMode,
}

impl Default for LinkProfile {
    /// A LAN-ish profile close to the paper's setup: sub-millisecond round
    /// trips, a few MB/s effective throughput, prefetch of 50 rows.
    fn default() -> Self {
        LinkProfile {
            roundtrip_latency_us: 500.0,
            bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            row_prefetch: 50,
            mode: WireMode::Virtual,
        }
    }
}

impl LinkProfile {
    /// A free link: zero latency and infinite bandwidth. Used by unit
    /// tests that do not exercise transfer costs.
    pub fn instant() -> Self {
        LinkProfile {
            roundtrip_latency_us: 0.0,
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 100,
            mode: WireMode::Virtual,
        }
    }
}

/// The shared link; every [`crate::Connection`] of a database charges the
/// same link.
pub struct Link {
    profile: LinkProfile,
    accumulated_ns: AtomicU64,
}

impl Default for Link {
    fn default() -> Self {
        Link::new(LinkProfile::default())
    }
}

impl Link {
    pub fn new(profile: LinkProfile) -> Self {
        Link { profile, accumulated_ns: AtomicU64::new(0) }
    }

    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Charge a transfer of `roundtrips` round trips carrying `bytes`
    /// payload bytes; returns the charged duration.
    pub fn charge(&self, roundtrips: u64, bytes: u64) -> Duration {
        let us = self.profile.roundtrip_latency_us * roundtrips as f64
            + bytes as f64 / self.profile.bytes_per_sec * 1e6;
        let d = Duration::from_nanos((us * 1000.0) as u64);
        self.accumulated_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        if self.profile.mode == WireMode::Sleep && !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }

    /// Charge a cursor fetch of `rows` rows totalling `bytes` bytes: the
    /// number of round trips is `ceil(rows / row_prefetch)`.
    pub fn charge_fetch(&self, rows: u64, bytes: u64) -> Duration {
        let prefetch = self.profile.row_prefetch.max(1) as u64;
        self.charge(rows.div_ceil(prefetch).max(1), bytes)
    }

    /// Total virtual time charged so far.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.accumulated_ns.load(Ordering::Relaxed))
    }

    pub fn reset(&self) {
        self.accumulated_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let link = Link::new(LinkProfile {
            roundtrip_latency_us: 1000.0,
            bytes_per_sec: 1e6,
            row_prefetch: 10,
            mode: WireMode::Virtual,
        });
        // 25 rows -> 3 roundtrips (3ms) + 1e6 bytes at 1MB/s (1s)
        let d = link.charge_fetch(25, 1_000_000);
        assert!((d.as_secs_f64() - 1.003).abs() < 1e-6, "{d:?}");
        assert_eq!(link.total(), d);
        link.reset();
        assert_eq!(link.total(), Duration::ZERO);
    }

    #[test]
    fn instant_profile_is_free() {
        let link = Link::new(LinkProfile::instant());
        assert_eq!(link.charge_fetch(1_000_000, u64::MAX / 4), Duration::ZERO);
    }
}
