//! The simulated client/server wire.
//!
//! The paper's transfer costs come from JDBC round trips between the
//! middleware (a Java process) and Oracle. In this reproduction both ends
//! live in one process, so an in-process link charges each data movement
//! against a configurable profile: a fixed latency per round trip (one
//! round trip fetches `row_prefetch` rows — the JDBC row-prefetch setting
//! the paper discusses in Section 3.2) plus a bandwidth term over the
//! encoded bytes.
//!
//! By default charges accrue on a **virtual clock** (deterministic, free
//! to run), and experiment harnesses report wall time + virtual wire
//! time; `WireMode::Sleep` makes the link actually sleep instead.
//!
//! The link can also *fail*: [`Link::transfer`] numbers every round trip
//! and consults an optional [`FaultInjector`] (see [`crate::fault`]),
//! which may slow the transfer down or make it fail transiently or
//! fatally. With no injector installed the fault path is a single
//! relaxed atomic load per batch — the infallible [`Link::charge`] entry
//! points are unchanged for callers that cannot fail.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::fault::{Fault, FaultInjector, WireFailure};
use parking_lot::RwLock;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Accumulate charges on a virtual clock (default).
    Virtual,
    /// Really sleep for each charge (makes wall-clock benchmarks include
    /// transfer time directly).
    Sleep,
}

/// Link cost model.
#[derive(Debug, Clone, Copy)]
pub struct LinkProfile {
    /// Fixed cost per client/server round trip (µs).
    pub roundtrip_latency_us: f64,
    /// Payload bandwidth (bytes per second).
    pub bytes_per_sec: f64,
    /// Rows fetched per round trip by a client cursor (JDBC row prefetch).
    pub row_prefetch: usize,
    pub mode: WireMode,
}

impl Default for LinkProfile {
    /// A LAN-ish profile close to the paper's setup: sub-millisecond round
    /// trips, a few MB/s effective throughput, prefetch of 50 rows.
    fn default() -> Self {
        LinkProfile {
            roundtrip_latency_us: 500.0,
            bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            row_prefetch: 50,
            mode: WireMode::Virtual,
        }
    }
}

impl LinkProfile {
    /// A free link: zero latency and infinite bandwidth. Used by unit
    /// tests that do not exercise transfer costs.
    pub fn instant() -> Self {
        LinkProfile {
            roundtrip_latency_us: 0.0,
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 100,
            mode: WireMode::Virtual,
        }
    }
}

/// The shared link; every [`crate::Connection`] of a database charges the
/// same link.
pub struct Link {
    profile: LinkProfile,
    accumulated_ns: AtomicU64,
    /// Lifetime count of round trips; numbers the trips for scripted
    /// fault schedules ("fail the Nth round trip").
    roundtrips: AtomicU64,
    /// Fast-path switch: `transfer` consults the injector only when set.
    faults_on: AtomicBool,
    injector: RwLock<Option<Arc<dyn FaultInjector>>>,
}

impl Default for Link {
    fn default() -> Self {
        Link::new(LinkProfile::default())
    }
}

impl Link {
    pub fn new(profile: LinkProfile) -> Self {
        Link {
            profile,
            accumulated_ns: AtomicU64::new(0),
            roundtrips: AtomicU64::new(0),
            faults_on: AtomicBool::new(false),
            injector: RwLock::new(None),
        }
    }

    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Install a fault injector; subsequent [`Link::transfer`] calls
    /// consult it per round trip.
    pub fn set_injector(&self, injector: Arc<dyn FaultInjector>) {
        *self.injector.write() = Some(injector);
        self.faults_on.store(true, Ordering::Release);
    }

    /// Remove any installed injector, restoring the infallible fast path.
    pub fn clear_injector(&self) {
        self.faults_on.store(false, Ordering::Release);
        *self.injector.write() = None;
    }

    /// Whether an injector is currently installed.
    pub fn faults_enabled(&self) -> bool {
        self.faults_on.load(Ordering::Acquire)
    }

    /// Pure cost of a transfer under the profile (no accrual).
    fn cost(&self, roundtrips: u64, bytes: u64) -> Duration {
        let us = self.profile.roundtrip_latency_us * roundtrips as f64
            + bytes as f64 / self.profile.bytes_per_sec * 1e6;
        Duration::from_nanos((us * 1000.0) as u64)
    }

    /// Accrue a duration on the virtual clock (or really sleep it).
    fn accrue(&self, d: Duration) -> Duration {
        self.accumulated_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        if self.profile.mode == WireMode::Sleep && !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }

    /// Charge a transfer of `roundtrips` round trips carrying `bytes`
    /// payload bytes; returns the charged duration. Infallible: faults
    /// are never injected on this path.
    pub fn charge(&self, roundtrips: u64, bytes: u64) -> Duration {
        self.roundtrips.fetch_add(roundtrips, Ordering::Relaxed);
        self.accrue(self.cost(roundtrips, bytes))
    }

    /// Charge a cursor fetch of `rows` rows totalling `bytes` bytes: the
    /// number of round trips is `ceil(rows / row_prefetch)`.
    pub fn charge_fetch(&self, rows: u64, bytes: u64) -> Duration {
        let prefetch = self.profile.row_prefetch.max(1) as u64;
        self.charge(rows.div_ceil(prefetch).max(1), bytes)
    }

    /// The fallible transfer: like [`Link::charge`], but each round trip
    /// is numbered and offered to the installed [`FaultInjector`].
    /// Latency faults (spike/throttle) inflate the returned duration;
    /// error faults abort the transfer, still charging the round trips
    /// attempted before the failure (reported in
    /// [`WireFailure::charged`]).
    ///
    /// With no injector installed this is one extra relaxed load over
    /// `charge` — nothing is allocated and no per-row work is added.
    pub fn transfer(&self, roundtrips: u64, bytes: u64) -> Result<Duration, WireFailure> {
        let rts = roundtrips.max(1);
        let first = self.roundtrips.fetch_add(rts, Ordering::Relaxed) + 1;
        if !self.faults_on.load(Ordering::Relaxed) {
            return Ok(self.accrue(self.cost(rts, bytes)));
        }
        let injector = self.injector.read().clone();
        let Some(injector) = injector else {
            return Ok(self.accrue(self.cost(rts, bytes)));
        };
        let mut extra = Duration::ZERO;
        let mut throttle = 1.0f64;
        for rt in first..first + rts {
            let fail = |msg: String, fatal: bool, made: u64, extra: Duration| WireFailure {
                fatal,
                msg,
                charged: self.accrue(self.cost(made, 0) + extra),
            };
            match injector.inject(rt) {
                None => {}
                Some(Fault::Spike(d)) => extra += d,
                Some(Fault::Throttle(f)) => throttle = throttle.max(f.max(1.0)),
                Some(Fault::Transient(msg)) => {
                    return Err(fail(msg, false, rt - first + 1, extra));
                }
                Some(Fault::Disconnect) => {
                    return Err(fail(
                        format!("connection dropped by peer (round trip {rt})"),
                        false,
                        rt - first + 1,
                        extra,
                    ));
                }
                Some(Fault::Fatal(msg)) => {
                    return Err(fail(msg, true, rt - first + 1, extra));
                }
            }
        }
        Ok(self.accrue(self.cost(rts, bytes).mul_f64(throttle) + extra))
    }

    /// Charge a non-transfer delay to the wire clock (retry backoff).
    pub fn stall(&self, d: Duration) -> Duration {
        self.accrue(d)
    }

    /// Total virtual time charged so far.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.accumulated_ns.load(Ordering::Relaxed))
    }

    /// Lifetime round trips made on this link.
    pub fn roundtrips(&self) -> u64 {
        self.roundtrips.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.accumulated_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn charges_accumulate() {
        let link = Link::new(LinkProfile {
            roundtrip_latency_us: 1000.0,
            bytes_per_sec: 1e6,
            row_prefetch: 10,
            mode: WireMode::Virtual,
        });
        // 25 rows -> 3 roundtrips (3ms) + 1e6 bytes at 1MB/s (1s)
        let d = link.charge_fetch(25, 1_000_000);
        assert!((d.as_secs_f64() - 1.003).abs() < 1e-6, "{d:?}");
        assert_eq!(link.total(), d);
        link.reset();
        assert_eq!(link.total(), Duration::ZERO);
    }

    #[test]
    fn instant_profile_is_free() {
        let link = Link::new(LinkProfile::instant());
        assert_eq!(link.charge_fetch(1_000_000, u64::MAX / 4), Duration::ZERO);
    }

    #[test]
    fn transfer_without_injector_matches_charge() {
        let link = Link::new(LinkProfile {
            roundtrip_latency_us: 100.0,
            bytes_per_sec: 1e6,
            row_prefetch: 10,
            mode: WireMode::Virtual,
        });
        let a = link.charge(2, 500);
        let b = link.transfer(2, 500).unwrap();
        assert_eq!(a, b);
        assert_eq!(link.roundtrips(), 4);
    }

    #[test]
    fn scripted_fault_fails_the_exact_round_trip() {
        let link = Link::new(LinkProfile {
            roundtrip_latency_us: 1000.0,
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 10,
            mode: WireMode::Virtual,
        });
        link.set_injector(Arc::new(FaultPlan::scripted([(2, Fault::Disconnect)])));
        assert!(link.transfer(1, 0).is_ok()); // round trip 1
        let err = link.transfer(1, 0).unwrap_err(); // round trip 2
        assert!(!err.fatal);
        // the failed attempt still cost its round trip
        assert_eq!(err.charged, Duration::from_millis(1));
        assert!(link.transfer(1, 0).is_ok()); // round trip 3: recovered
        link.clear_injector();
        assert!(!link.faults_enabled());
    }

    #[test]
    fn spike_and_throttle_slow_but_do_not_fail() {
        let link = Link::new(LinkProfile {
            roundtrip_latency_us: 1000.0,
            bytes_per_sec: f64::INFINITY,
            row_prefetch: 10,
            mode: WireMode::Virtual,
        });
        link.set_injector(Arc::new(
            FaultPlan::scripted([(1, Fault::Spike(Duration::from_millis(7)))])
                .with_fault_at(2, Fault::Throttle(3.0)),
        ));
        assert_eq!(link.transfer(1, 0).unwrap(), Duration::from_millis(8));
        assert_eq!(link.transfer(1, 0).unwrap(), Duration::from_millis(3));
    }
}
