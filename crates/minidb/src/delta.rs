//! Bounded per-table DML delta logs.
//!
//! Every committed INSERT or DELETE is appended to its table's
//! [`DeltaLog`] as a tombstone record stamped with the write-version the
//! statement produced (see [`crate::catalog::Table::version`]). The log
//! covers a *monotone version range* `(floor, head]`: a middleware copy
//! of a fragment taken at version `v ≥ floor` can be brought forward to
//! the current state by replaying exactly the records with
//! `version > v` — the foundation of the middleware cache's
//! refresh-by-delta maintenance path.
//!
//! Two events shrink the covered range:
//!
//! * **compaction** — the log is byte-capped; when appending pushes it
//!   past the cap, whole version groups are dropped from the front and
//!   `floor` rises, so copies older than the new floor degrade to the
//!   pre-delta behavior (full refetch or drop);
//! * **poisoning** — in-place `UPDATE` mutates heap rows without a
//!   delete/insert pair, which tombstone replay cannot reproduce, so an
//!   update clears the log and raises `floor` to the update's version.

use std::collections::VecDeque;
use tango_algebra::Tuple;

/// Default per-table byte cap for a [`DeltaLog`]. Large enough to hold
/// write bursts against the paper-scale UIS tables, small enough that an
/// idle log never rivals the relation cache's budget.
pub const DEFAULT_DELTA_LOG_CAP: usize = 1 << 20;

/// Fixed per-record bookkeeping charged against the byte cap and the
/// wire when deltas are fetched: version stamp + operation tag.
pub const DELTA_RECORD_OVERHEAD: usize = 16;

/// The logged DML effect: a row appended to, or removed from, the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// The row was appended by an INSERT (or bulk load into an existing
    /// table).
    Insert,
    /// The row was removed by a DELETE.
    Delete,
}

/// One tombstone record: the full row an INSERT added or a DELETE
/// removed, stamped with the statement's write-version.
#[derive(Debug, Clone)]
pub struct DeltaRecord {
    /// The write-version the producing statement stamped on the table.
    pub version: u64,
    /// Insert or delete.
    pub op: DeltaOp,
    /// The affected row, in the table's schema.
    pub row: Tuple,
}

impl DeltaRecord {
    /// Bytes this record occupies in the log (and on the wire).
    pub fn byte_size(&self) -> usize {
        self.row.byte_size() + DELTA_RECORD_OVERHEAD
    }
}

/// A bounded, version-ordered log of insert/delete tombstones for one
/// table. See the module docs for the covered-range invariant.
#[derive(Debug)]
pub struct DeltaLog {
    /// Records in nondecreasing version order (front is oldest).
    records: VecDeque<DeltaRecord>,
    /// The log replays any suffix starting strictly after `floor`; a
    /// snapshot at version `< floor` can no longer be brought forward.
    floor: u64,
    /// Current size of `records` in bytes (per [`DeltaRecord::byte_size`]).
    bytes: usize,
    /// Byte cap; exceeded ⇒ compaction from the front.
    cap: usize,
}

impl DeltaLog {
    /// An empty log covering `(floor, floor]`.
    pub fn new(floor: u64, cap: usize) -> Self {
        DeltaLog { records: VecDeque::new(), floor, bytes: 0, cap }
    }

    /// Oldest version a snapshot may have and still be refreshable.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Bytes currently held by the log.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Change the byte cap (compacting immediately if now over it).
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
        self.compact();
    }

    /// Can a snapshot taken at version `since` be brought forward?
    pub fn covers(&self, since: u64) -> bool {
        since >= self.floor
    }

    /// Append tombstones for one statement at write-version `version`.
    /// Versions must be fed in nondecreasing order (they are: records are
    /// appended under the same write lock that allocates versions).
    pub fn record(&mut self, version: u64, op: DeltaOp, rows: impl IntoIterator<Item = Tuple>) {
        for row in rows {
            let rec = DeltaRecord { version, op, row };
            self.bytes += rec.byte_size();
            self.records.push_back(rec);
        }
        self.compact();
    }

    /// Record an effect tombstones cannot replay (in-place UPDATE): drop
    /// everything and raise the floor to `version`.
    pub fn poison(&mut self, version: u64) {
        self.records.clear();
        self.bytes = 0;
        self.floor = version;
    }

    /// Bytes of records a snapshot at `since` must replay, or `None` if
    /// the log no longer covers it.
    pub fn bytes_since(&self, since: u64) -> Option<u64> {
        if !self.covers(since) {
            return None;
        }
        Some(self.records.iter().filter(|r| r.version > since).map(|r| r.byte_size() as u64).sum())
    }

    /// The records a snapshot at `since` must replay (version order), or
    /// `None` if the log no longer covers it.
    pub fn records_since(&self, since: u64) -> Option<Vec<DeltaRecord>> {
        if !self.covers(since) {
            return None;
        }
        Some(self.records.iter().filter(|r| r.version > since).cloned().collect())
    }

    /// Drop whole version groups from the front until under the cap.
    /// Version groups are never split: replaying half a statement's
    /// effect would corrupt the refreshed copy.
    fn compact(&mut self) {
        while self.bytes > self.cap {
            let Some(front) = self.records.front() else { break };
            let v = front.version;
            while self.records.front().is_some_and(|r| r.version == v) {
                let rec = self.records.pop_front().expect("front checked");
                self.bytes -= rec.byte_size();
            }
            self.floor = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::tup;

    #[test]
    fn covers_and_replays_suffixes() {
        let mut log = DeltaLog::new(5, 1 << 20);
        log.record(6, DeltaOp::Insert, vec![tup![1], tup![2]]);
        log.record(7, DeltaOp::Delete, vec![tup![1]]);
        assert!(log.covers(5));
        assert!(!log.covers(4));
        assert_eq!(log.records_since(5).unwrap().len(), 3);
        assert_eq!(log.records_since(6).unwrap().len(), 1);
        assert_eq!(log.records_since(7).unwrap().len(), 0);
        assert!(log.records_since(4).is_none());
        assert!(log.bytes_since(6).unwrap() > 0);
        assert_eq!(log.bytes_since(7).unwrap(), 0);
    }

    #[test]
    fn compaction_raises_floor_by_whole_versions() {
        // cap fits roughly two single-int records
        let rec_bytes = DeltaRecord { version: 0, op: DeltaOp::Insert, row: tup![1] }.byte_size();
        let mut log = DeltaLog::new(0, 2 * rec_bytes);
        log.record(1, DeltaOp::Insert, vec![tup![1], tup![2]]); // fills the cap
        assert_eq!(log.floor(), 0);
        log.record(2, DeltaOp::Insert, vec![tup![3]]);
        // version 1's pair is dropped together; floor rises to 1
        assert_eq!(log.floor(), 1);
        assert!(log.covers(1));
        assert!(!log.covers(0));
        assert_eq!(log.records_since(1).unwrap().len(), 1);
    }

    #[test]
    fn poison_clears_and_raises_floor() {
        let mut log = DeltaLog::new(0, 1 << 20);
        log.record(1, DeltaOp::Insert, vec![tup![1]]);
        log.poison(2);
        assert!(!log.covers(1));
        assert!(log.covers(2));
        assert_eq!(log.bytes(), 0);
        assert_eq!(log.records_since(2).unwrap().len(), 0);
    }
}
