//! SQL lexer.

use crate::error::{DbError, Result};

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (uppercased for keywords comparison; original
    /// case kept).
    Ident(String),
    Number(f64),
    IntNumber(i64),
    Str(String),
    /// Punctuation / operator: `(`, `)`, `,`, `*`, `=`, `<`, `<=`, `>`,
    /// `>=`, `<>`, `+`, `-`, `/`, `.`
    Sym(&'static str),
    /// Optimizer hint comment body, e.g. `USE_NL` from `/*+ USE_NL */`.
    Hint(String),
    Eof,
}

impl Tok {
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => s.clone(),
            Tok::Number(n) => n.to_string(),
            Tok::IntNumber(n) => n.to_string(),
            Tok::Str(s) => format!("'{s}'"),
            Tok::Sym(s) => (*s).to_string(),
            Tok::Hint(h) => format!("/*+ {h} */"),
            Tok::Eof => "<end of statement>".to_string(),
        }
    }
}

/// Tokenize an SQL string. `--` line comments and `/* */` block comments
/// are skipped; `/*+ ... */` hint comments become [`Tok::Hint`].
pub fn lex(sql: &str) -> Result<Vec<Tok>> {
    let b = sql.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let err = |msg: &str, i: usize| DbError::Parse {
        msg: msg.to_string(),
        near: sql[i..].chars().take(16).collect(),
    };
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let is_hint = i + 2 < b.len() && b[i + 2] == b'+';
                let start = if is_hint { i + 3 } else { i + 2 };
                let mut j = start;
                while j + 1 < b.len() && !(b[j] == b'*' && b[j + 1] == b'/') {
                    j += 1;
                }
                if j + 1 >= b.len() {
                    return Err(err("unterminated comment", i));
                }
                if is_hint {
                    out.push(Tok::Hint(sql[start..j].trim().to_string()));
                }
                i = j + 2;
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= b.len() {
                        return Err(err("unterminated string literal", i));
                    }
                    if b[j] == b'\'' {
                        if j + 1 < b.len() && b[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                        } else {
                            break;
                        }
                    } else {
                        s.push(b[j] as char);
                        j += 1;
                    }
                }
                out.push(Tok::Str(s));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut saw_dot = false;
                while i < b.len() && ((b[i] as char).is_ascii_digit() || (b[i] == b'.' && !saw_dot))
                {
                    // a '.' must be followed by a digit to be part of the number
                    if b[i] == b'.' {
                        if i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit() {
                            saw_dot = true;
                        } else {
                            break;
                        }
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if saw_dot {
                    out.push(Tok::Number(text.parse().map_err(|_| err("bad number", start))?));
                } else {
                    out.push(Tok::IntNumber(text.parse().map_err(|_| err("bad number", start))?));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' | '"' => {
                if c == '"' {
                    let mut j = i + 1;
                    while j < b.len() && b[j] != b'"' {
                        j += 1;
                    }
                    if j >= b.len() {
                        return Err(err("unterminated quoted identifier", i));
                    }
                    out.push(Tok::Ident(sql[i + 1..j].to_string()));
                    i = j + 1;
                } else {
                    let start = i;
                    while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.push(Tok::Ident(sql[start..i].to_string()));
                }
            }
            '<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Sym("<="));
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    out.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Sym("<>"));
                i += 2;
            }
            '(' | ')' | ',' | '*' | '=' | '+' | '-' | '/' | '.' | ';' => {
                out.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '=' => "=",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '.' => ".",
                    _ => ";",
                }));
                i += 1;
            }
            other => return Err(err(&format!("unexpected character '{other}'"), i)),
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("SELECT a.b, 'o''brien', 3.5, 42 FROM t -- comment\nWHERE x <= 5").unwrap();
        assert!(toks.contains(&Tok::Ident("SELECT".into())));
        assert!(toks.contains(&Tok::Str("o'brien".into())));
        assert!(toks.contains(&Tok::Number(3.5)));
        assert!(toks.contains(&Tok::IntNumber(42)));
        assert!(toks.contains(&Tok::Sym("<=")));
    }

    #[test]
    fn hints_survive_comments_die() {
        let toks = lex("SELECT /*+ USE_NL */ * /* gone */ FROM t").unwrap();
        assert!(toks.contains(&Tok::Hint("USE_NL".into())));
        assert!(!toks.iter().any(|t| matches!(t, Tok::Hint(h) if h == "gone")));
    }

    #[test]
    fn errors() {
        assert!(lex("SELECT 'oops").is_err());
        assert!(lex("SELECT #").is_err());
    }
}
