//! The connection's retry policy: capped exponential backoff with
//! deterministic jitter and an optional per-statement time budget.
//!
//! Backoff never sleeps on the virtual wire — it is *charged* to the
//! link like any other wire time, so retried executions stay
//! deterministic and benchmarks account the waiting the way they
//! account transfers. Jitter is derived from a splitmix64 hash of
//! `(seed, attempt)` rather than a shared RNG stream, so a policy's
//! backoff schedule is a pure function: the same attempt always waits
//! the same time, concurrency cannot perturb it.

use crate::error::{DbError, ErrorClass};
use std::time::Duration;

/// How a [`crate::Connection`] reacts to retryable wire failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per transfer, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff interval.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized away, in `[0, 1]`: the waited
    /// interval is `backoff × [1 − jitter, 1]`.
    pub jitter: f64,
    /// Per-statement time budget (server + wire + backoff). `None`
    /// disables timeouts.
    pub statement_timeout: Option<Duration>,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            jitter: 0.25,
            statement_timeout: None,
            seed: 0x7461_6E67, // "tang"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out — the seed
    /// repo's behavior, used where failures must surface immediately.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// This policy with a per-statement time budget.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.statement_timeout = Some(t);
        self
    }

    /// The un-jittered backoff before retry number `attempt` (1-based
    /// count of attempts already failed): exponential, capped at
    /// [`RetryPolicy::max_backoff`]. Attempt 0 waits nothing.
    pub fn base_backoff_for(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(20);
        self.base_backoff.saturating_mul(1u32 << exp).min(self.max_backoff)
    }

    /// The jittered backoff actually waited before retry `attempt` — a
    /// pure function of `(self.seed, attempt)`, always within
    /// `[(1 − jitter) × base, base]`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let base = self.base_backoff_for(attempt);
        if base.is_zero() || self.jitter <= 0.0 {
            return base;
        }
        // 53 uniform bits -> unit interval [0, 1)
        let unit = (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(1.0 - self.jitter.min(1.0) * unit)
    }

    /// Whether another attempt should follow a failure: only transient
    /// failures are retried, and only while attempts remain.
    pub fn should_retry(&self, e: &DbError, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts && e.class() == ErrorClass::Transient
    }
}

/// splitmix64 — the standard 64-bit finalizer (also the seeder of the
/// vendored xoshiro shim); bijective, so distinct attempts never
/// collide on jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        assert_eq!(p.base_backoff_for(1), Duration::from_millis(2));
        assert_eq!(p.base_backoff_for(2), Duration::from_millis(4));
        assert_eq!(p.base_backoff_for(3), Duration::from_millis(8));
        assert_eq!(p.base_backoff_for(4), Duration::from_millis(10)); // capped
        assert_eq!(p.base_backoff_for(30), Duration::from_millis(10));
    }

    #[test]
    fn jitter_stays_within_band_and_is_deterministic() {
        let p = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        for attempt in 1..10 {
            let base = p.base_backoff_for(attempt);
            let j = p.backoff_for(attempt);
            assert!(j <= base, "attempt {attempt}: {j:?} > {base:?}");
            assert!(j >= base.mul_f64(0.5), "attempt {attempt}: {j:?} below band");
            assert_eq!(j, p.backoff_for(attempt), "jitter must be a pure function");
        }
    }

    #[test]
    fn only_transients_are_retried() {
        let p = RetryPolicy::default();
        assert!(p.should_retry(&DbError::Transient("x".into()), 1));
        assert!(!p.should_retry(&DbError::Transient("x".into()), p.max_attempts));
        assert!(!p.should_retry(&DbError::Fatal("x".into()), 1));
        assert!(!p.should_retry(&DbError::Timeout("x".into()), 1));
        assert!(!p.should_retry(&DbError::Semantic("x".into()), 1));
    }
}
