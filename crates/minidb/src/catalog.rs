//! Catalog and storage: heap tables, B-tree indexes, ANALYZE statistics,
//! and Oracle-style dictionary views.

use crate::delta::{DeltaLog, DeltaOp, DeltaRecord, DEFAULT_DELTA_LOG_CAP};
use crate::error::{DbError, Result};
use crate::wire::Link;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tango_algebra::value::Key;
use tango_algebra::{Attr, Relation, Schema, Tuple, Type, Value};
use tango_stats::RelationStats;

/// Number of histogram buckets ANALYZE collects per numeric column
/// (Oracle's default height-balanced histogram size ballpark).
pub const HISTOGRAM_BUCKETS: usize = 20;

/// A stored table: schema, heap of rows, optional ANALYZE statistics.
pub struct Table {
    pub schema: Arc<Schema>,
    pub rows: Vec<Tuple>,
    pub stats: Option<RelationStats>,
    /// Monotonic write-version stamp, drawn from the database-wide
    /// [`DbInner::version_clock`]. Bumped by every DML statement that
    /// touches this table; middleware caches compare it to decide whether
    /// a materialized copy of a fragment over this table is still fresh.
    pub version: u64,
}

impl Table {
    pub fn byte_size(&self) -> usize {
        self.rows.iter().map(Tuple::byte_size).sum()
    }

    pub fn blocks(&self) -> u64 {
        (self.byte_size() as u64).div_ceil(8192).max(1)
    }
}

/// A secondary B-tree index on one column.
pub struct IndexDef {
    pub name: String,
    pub table: String,
    pub col: String,
    /// value key -> row ids
    pub map: BTreeMap<Key, Vec<usize>>,
}

pub struct DbInner {
    pub tables: HashMap<String, Table>,
    pub indexes: Vec<IndexDef>,
    /// Database-wide monotonic version counter; see [`Table::version`].
    pub version_clock: u64,
    /// Per-table DML delta logs (insert/delete tombstones) backing the
    /// middleware cache's refresh-by-delta maintenance; see
    /// [`crate::delta::DeltaLog`].
    pub delta_logs: HashMap<String, DeltaLog>,
    /// Byte cap applied to newly created delta logs.
    pub delta_cap: usize,
}

impl Default for DbInner {
    fn default() -> Self {
        DbInner {
            tables: HashMap::new(),
            indexes: Vec::new(),
            version_clock: 0,
            delta_logs: HashMap::new(),
            delta_cap: DEFAULT_DELTA_LOG_CAP,
        }
    }
}

impl DbInner {
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(&name.to_uppercase()).ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    pub fn index_on(&self, table: &str, col: &str) -> Option<&IndexDef> {
        self.indexes
            .iter()
            .find(|ix| ix.table.eq_ignore_ascii_case(table) && ix.col.eq_ignore_ascii_case(col))
    }

    fn rebuild_index(&mut self, i: usize) -> Result<()> {
        let (table_name, col) = (self.indexes[i].table.clone(), self.indexes[i].col.clone());
        let table = self.table(&table_name)?;
        let ci = table.schema.index_of(&col)?;
        let mut map: BTreeMap<Key, Vec<usize>> = BTreeMap::new();
        for (rid, row) in table.rows.iter().enumerate() {
            map.entry(row[ci].key()).or_default().push(rid);
        }
        self.indexes[i].map = map;
        Ok(())
    }

    /// Advance the version clock and stamp `table` with the new value.
    /// Called under the write lock by every mutating statement.
    pub fn bump_version(&mut self, table: &str) {
        self.version_clock += 1;
        let v = self.version_clock;
        if let Some(t) = self.tables.get_mut(&table.to_uppercase()) {
            t.version = v;
        }
    }

    pub fn refresh_indexes_for(&mut self, table: &str) -> Result<()> {
        let ids: Vec<usize> = self
            .indexes
            .iter()
            .enumerate()
            .filter(|(_, ix)| ix.table.eq_ignore_ascii_case(table))
            .map(|(i, _)| i)
            .collect();
        for i in ids {
            self.rebuild_index(i)?;
        }
        Ok(())
    }
}

/// The shared database instance. Cheap to clone; all clones see the same
/// storage and the same simulated wire.
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<RwLock<DbInner>>,
    pub(crate) link: Arc<Link>,
    /// Accumulated server-side execution time (ns).
    pub(crate) server_ns: Arc<AtomicU64>,
    /// Database-scoped state installed by the middleware layer; see
    /// [`Database::middleware_state`].
    pub(crate) middleware: Arc<OnceLock<Arc<dyn Any + Send + Sync>>>,
}

impl Database {
    pub fn new(link: Link) -> Self {
        Database {
            inner: Arc::new(RwLock::new(DbInner::default())),
            link: Arc::new(link),
            server_ns: Arc::new(AtomicU64::new(0)),
            middleware: Arc::new(OnceLock::new()),
        }
    }

    /// Fetch — initializing on first call — the single middleware-state
    /// value shared by every clone of this database handle.
    ///
    /// The middleware (`tango-core`) keeps per-*database* serving state
    /// — notably the shared relation cache every session attaches to —
    /// but this crate cannot depend on `tango-core`, so the database
    /// exposes one type-erased, write-once slot instead. The first
    /// caller's `init` value wins (subsequent racers' values are
    /// dropped), and every later call of the same `T` gets the same
    /// `Arc`. A call with a *different* `T` than the one installed
    /// returns a fresh unshared value — callers are expected to agree on
    /// one state type, which `tango-core` does.
    pub fn middleware_state<T: Any + Send + Sync>(&self, init: impl FnOnce() -> T) -> Arc<T> {
        let mut init = Some(init);
        let slot = self.middleware.get_or_init(|| {
            Arc::new(init.take().expect("first initialization")()) as Arc<dyn Any + Send + Sync>
        });
        match slot.clone().downcast::<T>() {
            Ok(state) => state,
            // a different T is installed; `init` was then not consumed
            Err(_) => Arc::new(init.take().expect("type mismatch implies foreign init")()),
        }
    }

    pub fn in_memory() -> Self {
        Database::new(Link::default())
    }

    pub fn link(&self) -> &Arc<Link> {
        &self.link
    }

    pub fn add_server_ns(&self, ns: u64) {
        self.server_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total server-side compute time so far.
    pub fn server_time(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.server_ns.load(Ordering::Relaxed))
    }

    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        let mut inner = self.inner.write();
        let key = name.to_uppercase();
        if inner.tables.contains_key(&key) {
            return Err(DbError::TableExists(name.to_string()));
        }
        inner.version_clock += 1;
        let version = inner.version_clock;
        let cap = inner.delta_cap;
        inner.tables.insert(
            key.clone(),
            Table { schema: Arc::new(schema), rows: Vec::new(), stats: None, version },
        );
        inner.delta_logs.insert(key, DeltaLog::new(version, cap));
        Ok(())
    }

    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let mut inner = self.inner.write();
        let key = name.to_uppercase();
        if inner.tables.remove(&key).is_none() && !if_exists {
            return Err(DbError::NoSuchTable(name.to_string()));
        }
        inner.delta_logs.remove(&key);
        inner.indexes.retain(|ix| !ix.table.eq_ignore_ascii_case(name));
        Ok(())
    }

    pub fn insert_rows(&self, name: &str, rows: Vec<Tuple>) -> Result<u64> {
        let mut inner = self.inner.write();
        let key = name.to_uppercase();
        let table =
            inner.tables.get_mut(&key).ok_or_else(|| DbError::NoSuchTable(name.to_string()))?;
        let arity = table.schema.len();
        let n = rows.len() as u64;
        for r in &rows {
            if r.len() != arity {
                return Err(DbError::Semantic(format!(
                    "insert arity mismatch: expected {arity}, got {}",
                    r.len()
                )));
            }
        }
        table.rows.extend(rows.iter().cloned());
        table.stats = None; // stale until re-ANALYZEd
        inner.bump_version(name);
        let v = inner.version_clock;
        if let Some(log) = inner.delta_logs.get_mut(&key) {
            log.record(v, DeltaOp::Insert, rows);
        }
        inner.refresh_indexes_for(name)?;
        Ok(n)
    }

    /// Delete rows satisfying `pred` (all rows when `None`).
    pub fn delete_rows(&self, name: &str, pred: Option<&tango_algebra::Expr>) -> Result<u64> {
        let mut inner = self.inner.write();
        let key = name.to_uppercase();
        let table =
            inner.tables.get_mut(&key).ok_or_else(|| DbError::NoSuchTable(name.to_string()))?;
        let before = table.rows.len();
        let mut tombstones = Vec::new();
        match pred {
            None => tombstones = std::mem::take(&mut table.rows),
            Some(p) => {
                let bound = p.bound(&table.schema)?;
                let mut err = None;
                table.rows.retain(|t| match bound.matches(t) {
                    Ok(m) => {
                        if m {
                            tombstones.push(t.clone());
                        }
                        !m
                    }
                    Err(e) => {
                        err = Some(e);
                        true
                    }
                });
                if let Some(e) = err {
                    return Err(e.into());
                }
            }
        }
        let removed = (before - table.rows.len()) as u64;
        table.stats = None;
        inner.bump_version(name);
        let v = inner.version_clock;
        if let Some(log) = inner.delta_logs.get_mut(&key) {
            log.record(v, DeltaOp::Delete, tombstones);
        }
        inner.refresh_indexes_for(name)?;
        Ok(removed)
    }

    /// Update columns of rows satisfying `pred`.
    pub fn update_rows(
        &self,
        name: &str,
        sets: &[(String, tango_algebra::Expr)],
        pred: Option<&tango_algebra::Expr>,
    ) -> Result<u64> {
        let mut inner = self.inner.write();
        let key = name.to_uppercase();
        let table =
            inner.tables.get_mut(&key).ok_or_else(|| DbError::NoSuchTable(name.to_string()))?;
        let bound_pred = pred.map(|p| p.bound(&table.schema)).transpose()?;
        let mut bound_sets = Vec::with_capacity(sets.len());
        for (col, e) in sets {
            let i = table.schema.index_of(col)?;
            bound_sets.push((i, e.bound(&table.schema)?));
        }
        let mut n = 0u64;
        for row in &mut table.rows {
            let hit = match &bound_pred {
                Some(p) => p.matches(row)?,
                None => true,
            };
            if hit {
                // evaluate all right-hand sides against the *old* row
                let vals: Vec<(usize, Value)> = bound_sets
                    .iter()
                    .map(|(i, e)| e.eval(row).map(|v| (*i, v)))
                    .collect::<tango_algebra::Result<_>>()?;
                for (i, v) in vals {
                    row.set(i, v);
                }
                n += 1;
            }
        }
        table.stats = None;
        inner.bump_version(name);
        let v = inner.version_clock;
        if n > 0 {
            // in-place mutation has no delete/insert tombstone form —
            // poison the log so stale copies degrade to refetch/drop
            if let Some(log) = inner.delta_logs.get_mut(&key) {
                log.poison(v);
            }
        }
        inner.refresh_indexes_for(name)?;
        Ok(n)
    }

    /// ANALYZE TABLE: collect full statistics including height-balanced
    /// histograms on numeric/date columns.
    pub fn analyze(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let key = name.to_uppercase();
        let indexed: Vec<(String, bool)> = inner
            .indexes
            .iter()
            .filter(|ix| ix.table.eq_ignore_ascii_case(name))
            .map(|ix| (ix.col.to_uppercase(), false))
            .collect();
        let table =
            inner.tables.get_mut(&key).ok_or_else(|| DbError::NoSuchTable(name.to_string()))?;
        let rel = Relation::new(table.schema.clone(), table.rows.clone());
        let mut stats = RelationStats::from_relation(&rel, HISTOGRAM_BUCKETS);
        for (col, clustered) in indexed {
            if let Some(a) = stats.attrs.get_mut(&col) {
                a.indexed = true;
                a.clustered = clustered;
            }
        }
        table.stats = Some(stats);
        Ok(())
    }

    pub fn create_index(&self, name: &str, table: &str, col: &str) -> Result<()> {
        let mut inner = self.inner.write();
        inner.table(table)?; // existence check
        inner.indexes.push(IndexDef {
            name: name.to_string(),
            table: table.to_string(),
            col: col.to_string(),
            map: BTreeMap::new(),
        });
        let i = inner.indexes.len() - 1;
        inner.rebuild_index(i)
    }

    pub fn table_schema(&self, name: &str) -> Option<Schema> {
        if let Some(v) = dictionary_view_schema(name) {
            return Some(v);
        }
        self.inner.read().tables.get(&name.to_uppercase()).map(|t| t.schema.as_ref().clone())
    }

    pub fn table_stats(&self, name: &str) -> Option<RelationStats> {
        self.inner.read().tables.get(&name.to_uppercase()).and_then(|t| t.stats.clone())
    }

    /// Current write-version of a base table (`None` if it does not
    /// exist). Strictly increases with every INSERT/DELETE/UPDATE against
    /// the table, so `version unchanged` ⇒ `contents unchanged`.
    pub fn table_version(&self, name: &str) -> Option<u64> {
        self.inner.read().tables.get(&name.to_uppercase()).map(|t| t.version)
    }

    /// Bytes of delta-log records a snapshot of `name` taken at version
    /// `since` must replay to reach the current state, or `None` when no
    /// such replay is possible (unknown table, or the log's floor has
    /// risen past `since` through compaction or an in-place UPDATE).
    /// Like [`Database::table_version`], a catalog peek — no wire.
    pub fn delta_bytes_since(&self, name: &str, since: u64) -> Option<u64> {
        self.inner.read().delta_logs.get(&name.to_uppercase()).and_then(|l| l.bytes_since(since))
    }

    /// Total bytes currently held across all per-table delta logs.
    pub fn delta_log_bytes(&self) -> u64 {
        self.inner.read().delta_logs.values().map(|l| l.bytes() as u64).sum()
    }

    /// Set the per-table delta-log byte cap, applying it to existing
    /// logs immediately (they compact if now over it).
    pub fn set_delta_cap(&self, cap: usize) {
        let mut inner = self.inner.write();
        inner.delta_cap = cap;
        for log in inner.delta_logs.values_mut() {
            log.set_cap(cap);
        }
    }

    /// Atomically read the delta records each `(table, since)` request
    /// must replay **and** a consistent version vector of every base
    /// table, all under one read lock — the snapshot a refresher needs
    /// to bring cached fragments forward without racing concurrent
    /// writers. Returns `None` if any requested table is unknown or its
    /// log no longer covers `since`.
    pub fn deltas_since_multi(&self, reqs: &[(String, u64)]) -> Option<DeltaSnapshot> {
        let inner = self.inner.read();
        let mut tables = Vec::with_capacity(reqs.len());
        for (name, since) in reqs {
            let log = inner.delta_logs.get(&name.to_uppercase())?;
            tables.push((name.to_uppercase(), log.records_since(*since)?));
        }
        let mut versions: Vec<(String, u64)> =
            inner.tables.iter().map(|(n, t)| (n.clone(), t.version)).collect();
        versions.sort();
        Some(DeltaSnapshot { tables, versions })
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().tables.keys().cloned().collect();
        v.sort();
        v
    }
}

/// A consistent point-in-time read of delta logs plus the version
/// vector they are consistent with; see [`Database::deltas_since_multi`].
#[derive(Debug)]
pub struct DeltaSnapshot {
    /// Per requested table (uppercased): the records to replay, in
    /// version order.
    pub tables: Vec<(String, Vec<DeltaRecord>)>,
    /// `(table, version)` for every base table, sorted by name, read
    /// under the same lock as the records.
    pub versions: Vec<(String, u64)>,
}

impl DeltaSnapshot {
    /// The snapshot version of `table`, if it exists.
    pub fn version_of(&self, table: &str) -> Option<u64> {
        let key = table.to_uppercase();
        self.versions.iter().find(|(n, _)| *n == key).map(|(_, v)| *v)
    }

    /// Total wire bytes of the carried records.
    pub fn byte_size(&self) -> u64 {
        self.tables.iter().flat_map(|(_, recs)| recs.iter()).map(|r| r.byte_size() as u64).sum()
    }
}

/// Schemas of the Oracle-style dictionary views.
pub fn dictionary_view_schema(name: &str) -> Option<Schema> {
    match name.to_uppercase().as_str() {
        "USER_TABLES" => Some(Schema::new(vec![
            Attr::new("TABLE_NAME", Type::Str),
            Attr::new("NUM_ROWS", Type::Int),
            Attr::new("BLOCKS", Type::Int),
            Attr::new("AVG_ROW_LEN", Type::Double),
        ])),
        "USER_TAB_COLUMNS" => Some(Schema::new(vec![
            Attr::new("TABLE_NAME", Type::Str),
            Attr::new("COLUMN_NAME", Type::Str),
            Attr::new("NUM_DISTINCT", Type::Int),
            Attr::new("LOW_VALUE", Type::Double),
            Attr::new("HIGH_VALUE", Type::Double),
            Attr::new("NUM_NULLS", Type::Int),
            Attr::new("AVG_COL_LEN", Type::Double),
            Attr::new("INDEXED", Type::Int),
        ])),
        "USER_HISTOGRAMS" => Some(Schema::new(vec![
            Attr::new("TABLE_NAME", Type::Str),
            Attr::new("COLUMN_NAME", Type::Str),
            Attr::new("ENDPOINT_NUMBER", Type::Int),
            Attr::new("ENDPOINT_VALUE", Type::Double),
        ])),
        _ => None,
    }
}

/// Materialize a dictionary view from current catalog state. Only tables
/// that have been ANALYZEd appear (as in Oracle, where NUM_ROWS is null
/// until statistics are gathered — we simply omit such tables).
pub fn dictionary_view(name: &str, inner: &DbInner) -> Option<Relation> {
    let schema = Arc::new(dictionary_view_schema(name)?);
    let mut names: Vec<&String> = inner.tables.keys().collect();
    names.sort();
    let mut rows = Vec::new();
    match name.to_uppercase().as_str() {
        "USER_TABLES" => {
            for t in names {
                let table = &inner.tables[t];
                if let Some(s) = &table.stats {
                    rows.push(Tuple::new(vec![
                        Value::Str(t.clone()),
                        Value::Int(s.rows as i64),
                        Value::Int(s.blocks as i64),
                        Value::Double(s.avg_tuple_bytes),
                    ]));
                }
            }
        }
        "USER_TAB_COLUMNS" => {
            for t in names {
                let table = &inner.tables[t];
                if let Some(s) = &table.stats {
                    for attr in table.schema.attrs() {
                        let a = s.attr(&attr.name).cloned().unwrap_or_default();
                        rows.push(Tuple::new(vec![
                            Value::Str(t.clone()),
                            Value::Str(attr.name.to_uppercase()),
                            Value::Int(a.distinct as i64),
                            a.min.map(Value::Double).unwrap_or(Value::Null),
                            a.max.map(Value::Double).unwrap_or(Value::Null),
                            Value::Int(a.nulls as i64),
                            Value::Double(a.avg_width),
                            Value::Int(a.indexed as i64),
                        ]));
                    }
                }
            }
        }
        "USER_HISTOGRAMS" => {
            for t in names {
                let table = &inner.tables[t];
                if let Some(s) = &table.stats {
                    for attr in table.schema.attrs() {
                        if let Some(h) = s.attr(&attr.name).and_then(|a| a.histogram.as_ref()) {
                            for (i, ep) in h.endpoints.iter().enumerate() {
                                rows.push(Tuple::new(vec![
                                    Value::Str(t.clone()),
                                    Value::Str(attr.name.to_uppercase()),
                                    Value::Int(i as i64),
                                    Value::Double(*ep),
                                ]));
                            }
                        }
                    }
                }
            }
        }
        _ => return None,
    }
    Some(Relation::new(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::tup;

    fn db_with_table() -> Database {
        let db = Database::in_memory();
        let schema = Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]);
        db.create_table("POSITION", schema).unwrap();
        db.insert_rows("POSITION", vec![tup![1, 2, 20], tup![1, 5, 25], tup![2, 5, 10]]).unwrap();
        db
    }

    #[test]
    fn create_insert_analyze() {
        let db = db_with_table();
        assert!(db.table_stats("POSITION").is_none());
        db.analyze("POSITION").unwrap();
        let s = db.table_stats("POSITION").unwrap();
        assert_eq!(s.rows, 3.0);
        assert_eq!(s.attr("PosID").unwrap().distinct, 2);
    }

    /// Every write — INSERT, DELETE, UPDATE — moves the table's
    /// write-version; reads never do. `version unchanged ⇒ contents
    /// unchanged` is what the middleware cache's invalidation rests on.
    #[test]
    fn write_version_moves_on_every_dml() {
        let db = db_with_table();
        let v0 = db.table_version("position").unwrap();
        db.analyze("POSITION").unwrap();
        assert_eq!(db.table_version("POSITION").unwrap(), v0, "reads must not bump");

        db.insert_rows("POSITION", vec![tup![9, 1, 2]]).unwrap();
        let v1 = db.table_version("POSITION").unwrap();
        assert!(v1 > v0);

        db.delete_rows("POSITION", None).unwrap();
        let v2 = db.table_version("POSITION").unwrap();
        assert!(v2 > v1);

        db.update_rows("POSITION", &[], None).unwrap();
        assert!(db.table_version("POSITION").unwrap() > v2);

        assert!(db.table_version("NOPE").is_none());
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = db_with_table();
        assert!(matches!(
            db.create_table("position", Schema::new(vec![])),
            Err(DbError::TableExists(_))
        ));
        db.drop_table("POSITION", false).unwrap();
        assert!(db.drop_table("POSITION", true).is_ok());
        assert!(db.drop_table("POSITION", false).is_err());
    }

    #[test]
    fn index_maintenance() {
        let db = db_with_table();
        db.create_index("IX1", "POSITION", "PosID").unwrap();
        {
            let inner = db.inner.read();
            let ix = inner.index_on("POSITION", "posid").unwrap();
            assert_eq!(ix.map.len(), 2);
        }
        db.insert_rows("POSITION", vec![tup![3, 1, 2]]).unwrap();
        let inner = db.inner.read();
        let ix = inner.index_on("POSITION", "PosID").unwrap();
        assert_eq!(ix.map.len(), 3);
    }

    #[test]
    fn dictionary_views() {
        let db = db_with_table();
        db.analyze("POSITION").unwrap();
        let inner = db.inner.read();
        let ut = dictionary_view("USER_TABLES", &inner).unwrap();
        assert_eq!(ut.len(), 1);
        assert_eq!(ut.tuples()[0][1], Value::Int(3));
        let utc = dictionary_view("USER_TAB_COLUMNS", &inner).unwrap();
        assert_eq!(utc.len(), 3);
        let uh = dictionary_view("USER_HISTOGRAMS", &inner).unwrap();
        assert!(!uh.is_empty());
    }
}
