//! Physical plans and the materializing executor.
//!
//! Deliberately a different execution style from the middleware: the
//! mini-DBMS evaluates operator-at-a-time, materializing every
//! intermediate result, with hash-based joins and aggregation — the
//! "conventional DBMS" the middleware treats as a very capable file
//! system.

use crate::catalog::{dictionary_view, DbInner};
use crate::error::{DbError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use tango_algebra::value::Key;
use tango_algebra::{AggFunc, Expr, Relation, Schema, SortSpec, Tuple, Value};

/// One aggregate computed by `HashAgg`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    pub func: AggFunc,
    /// `None` = `COUNT(*)`.
    pub arg: Option<Expr>,
    pub alias: String,
}

/// A physical plan node with its output schema (computed by the planner).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub op: PlanOp,
    pub schema: Arc<Schema>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Full table scan (base table or dictionary view).
    Scan {
        table: String,
    },
    /// B-tree index range scan: `lo < col` and/or `col < hi` bounds
    /// (inclusive flags per bound); residual predicates live in a parent
    /// `Filter`.
    IndexScan {
        table: String,
        col: String,
        lo: Option<(Value, bool)>,
        hi: Option<(Value, bool)>,
    },
    /// Re-expose a child under different attribute names (inline-view
    /// aliasing).
    Rename {
        input: Box<Plan>,
    },
    Filter {
        pred: Expr,
        input: Box<Plan>,
    },
    Project {
        items: Vec<(Expr, String)>,
        input: Box<Plan>,
    },
    Sort {
        keys: SortSpec,
        input: Box<Plan>,
    },
    HashJoin {
        lkeys: Vec<String>,
        rkeys: Vec<String>,
        left: Box<Plan>,
        right: Box<Plan>,
    },
    MergeJoin {
        lkeys: Vec<String>,
        rkeys: Vec<String>,
        left: Box<Plan>,
        right: Box<Plan>,
    },
    /// Nested loops with optional predicate (over the concatenated row).
    NlJoin {
        pred: Option<Expr>,
        left: Box<Plan>,
        right: Box<Plan>,
    },
    /// Index nested-loop join: probe the B-tree index on `table.col`
    /// with the left key — what Oracle's `USE_NL` hint does when the
    /// inner table is indexed on the join column.
    IndexNlJoin {
        lkey: String,
        table: String,
        col: String,
        left: Box<Plan>,
    },
    HashAgg {
        group_by: Vec<String>,
        aggs: Vec<AggItem>,
        input: Box<Plan>,
    },
    Distinct {
        input: Box<Plan>,
    },
    UnionAll {
        inputs: Vec<Plan>,
    },
}

impl Plan {
    /// Render the plan as indented text (the EXPLAIN output).
    pub fn render(&self) -> String {
        fn go(p: &Plan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let line = match &p.op {
                PlanOp::Scan { table } => format!("TABLE SCAN {table}"),
                PlanOp::IndexScan { table, col, .. } => {
                    format!("INDEX RANGE SCAN {table}.{col}")
                }
                PlanOp::Rename { .. } => "VIEW".to_string(),
                PlanOp::Filter { pred, .. } => format!("FILTER [{pred}]"),
                PlanOp::Project { items, .. } => {
                    format!("PROJECT [{} columns]", items.len())
                }
                PlanOp::Sort { keys, .. } => format!("SORT [{keys}]"),
                PlanOp::HashJoin { lkeys, rkeys, .. } => format!(
                    "HASH JOIN [{}]",
                    lkeys
                        .iter()
                        .zip(rkeys)
                        .map(|(l, r)| format!("{l}={r}"))
                        .collect::<Vec<_>>()
                        .join(" AND ")
                ),
                PlanOp::MergeJoin { lkeys, rkeys, .. } => format!(
                    "MERGE JOIN [{}]",
                    lkeys
                        .iter()
                        .zip(rkeys)
                        .map(|(l, r)| format!("{l}={r}"))
                        .collect::<Vec<_>>()
                        .join(" AND ")
                ),
                PlanOp::NlJoin { .. } => "NESTED LOOPS".to_string(),
                PlanOp::IndexNlJoin { table, col, .. } => {
                    format!("INDEX NESTED LOOPS {table}.{col}")
                }
                PlanOp::HashAgg { group_by, aggs, .. } => {
                    format!("HASH GROUP BY [{}] aggs={}", group_by.join(", "), aggs.len())
                }
                PlanOp::Distinct { .. } => "HASH UNIQUE".to_string(),
                PlanOp::UnionAll { .. } => "UNION ALL".to_string(),
            };
            out.push_str(&pad);
            out.push_str(&line);
            out.push('\n');
            match &p.op {
                PlanOp::Rename { input }
                | PlanOp::Filter { input, .. }
                | PlanOp::Project { input, .. }
                | PlanOp::Sort { input, .. }
                | PlanOp::HashAgg { input, .. }
                | PlanOp::Distinct { input } => go(input, depth + 1, out),
                PlanOp::IndexNlJoin { left, .. } => go(left, depth + 1, out),
                PlanOp::HashJoin { left, right, .. }
                | PlanOp::MergeJoin { left, right, .. }
                | PlanOp::NlJoin { left, right, .. } => {
                    go(left, depth + 1, out);
                    go(right, depth + 1, out);
                }
                PlanOp::UnionAll { inputs } => {
                    for i in inputs {
                        go(i, depth + 1, out);
                    }
                }
                _ => {}
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }

    /// Operator count (for EXPLAIN-ish reporting).
    pub fn node_count(&self) -> usize {
        1 + match &self.op {
            PlanOp::Scan { .. } | PlanOp::IndexScan { .. } => 0,
            PlanOp::Rename { input }
            | PlanOp::Filter { input, .. }
            | PlanOp::Project { input, .. }
            | PlanOp::Sort { input, .. }
            | PlanOp::HashAgg { input, .. }
            | PlanOp::Distinct { input } => input.node_count(),
            PlanOp::IndexNlJoin { left, .. } => left.node_count(),
            PlanOp::HashJoin { left, right, .. }
            | PlanOp::MergeJoin { left, right, .. }
            | PlanOp::NlJoin { left, right, .. } => left.node_count() + right.node_count(),
            PlanOp::UnionAll { inputs } => inputs.iter().map(Plan::node_count).sum(),
        }
    }
}

/// Execute a plan against the database (storage lock held by the caller).
pub fn run(plan: &Plan, db: &DbInner) -> Result<Relation> {
    match &plan.op {
        PlanOp::Scan { table } => {
            if let Some(v) = dictionary_view(table, db) {
                return Ok(Relation::new(plan.schema.clone(), v.into_tuples()));
            }
            let t = db.table(table)?;
            Ok(Relation::new(plan.schema.clone(), t.rows.clone()))
        }
        PlanOp::IndexScan { table, col, lo, hi } => {
            let t = db.table(table)?;
            let ix = db
                .index_on(table, col)
                .ok_or_else(|| DbError::Semantic(format!("no index on {table}.{col}")))?;
            use std::ops::Bound;
            let lo_b = match lo {
                Some((v, true)) => Bound::Included(v.key()),
                Some((v, false)) => Bound::Excluded(v.key()),
                None => Bound::Unbounded,
            };
            let hi_b = match hi {
                Some((v, true)) => Bound::Included(v.key()),
                Some((v, false)) => Bound::Excluded(v.key()),
                None => Bound::Unbounded,
            };
            let mut rows = Vec::new();
            for (_, rids) in ix.map.range((lo_b, hi_b)) {
                for &rid in rids {
                    rows.push(t.rows[rid].clone());
                }
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::Rename { input } => {
            let r = run(input, db)?;
            Ok(Relation::new(plan.schema.clone(), r.into_tuples()))
        }
        PlanOp::Filter { pred, input } => {
            let r = run(input, db)?;
            let bound = pred.bound(r.schema())?;
            let mut rows = Vec::with_capacity(r.len() / 2);
            for t in r.into_tuples() {
                if bound.matches(&t)? {
                    rows.push(t);
                }
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::Project { items, input } => {
            let r = run(input, db)?;
            let bound: Vec<Expr> = items
                .iter()
                .map(|(e, _)| e.bound(r.schema()))
                .collect::<tango_algebra::Result<_>>()?;
            let mut rows = Vec::with_capacity(r.len());
            for t in r.tuples() {
                let mut vals = Vec::with_capacity(bound.len());
                for e in &bound {
                    vals.push(e.eval(t)?);
                }
                rows.push(Tuple::new(vals));
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::Sort { keys, input } => {
            let mut r = run(input, db)?;
            r.sort_by(keys);
            Ok(Relation::new(plan.schema.clone(), r.into_tuples()))
        }
        PlanOp::HashJoin { lkeys, rkeys, left, right } => {
            let l = run(left, db)?;
            let r = run(right, db)?;
            let li = resolve_keys(lkeys, l.schema())?;
            let ri = resolve_keys(rkeys, r.schema())?;
            // build on the right input
            let mut table: HashMap<Vec<Key>, Vec<&Tuple>> = HashMap::new();
            for t in r.tuples() {
                if ri.iter().any(|&i| t[i].is_null()) {
                    continue; // NULL keys never join
                }
                table.entry(ri.iter().map(|&i| t[i].key()).collect()).or_default().push(t);
            }
            let mut rows = Vec::new();
            for lt in l.tuples() {
                if li.iter().any(|&i| lt[i].is_null()) {
                    continue;
                }
                let k: Vec<Key> = li.iter().map(|&i| lt[i].key()).collect();
                if let Some(matches) = table.get(&k) {
                    for rt in matches {
                        rows.push(lt.concat(rt));
                    }
                }
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::MergeJoin { lkeys, rkeys, left, right } => {
            let mut l = run(left, db)?;
            let mut r = run(right, db)?;
            let lspec = SortSpec::by(lkeys.iter().map(String::as_str));
            let rspec = SortSpec::by(rkeys.iter().map(String::as_str));
            l.sort_by(&lspec);
            r.sort_by(&rspec);
            let li = resolve_keys(lkeys, l.schema())?;
            let ri = resolve_keys(rkeys, r.schema())?;
            let (lt, rt) = (l.tuples(), r.tuples());
            let mut rows = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < lt.len() && j < rt.len() {
                let cmp = key_cmp(&lt[i], &li, &rt[j], &ri);
                match cmp {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if li.iter().any(|&k| lt[i][k].is_null()) {
                            i += 1;
                            continue;
                        }
                        // group bounds
                        let mut i2 = i;
                        while i2 < lt.len() && key_cmp(&lt[i2], &li, &rt[j], &ri).is_eq() {
                            i2 += 1;
                        }
                        let mut j2 = j;
                        while j2 < rt.len() && key_cmp(&lt[i], &li, &rt[j2], &ri).is_eq() {
                            j2 += 1;
                        }
                        for l_row in &lt[i..i2] {
                            for r_row in &rt[j..j2] {
                                rows.push(l_row.concat(r_row));
                            }
                        }
                        i = i2;
                        j = j2;
                    }
                }
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::NlJoin { pred, left, right } => {
            let l = run(left, db)?;
            let r = run(right, db)?;
            let bound = match pred {
                Some(p) => Some(p.bound(&plan.schema)?),
                None => None,
            };
            let mut rows = Vec::new();
            for lt in l.tuples() {
                for rt in r.tuples() {
                    let out = lt.concat(rt);
                    match &bound {
                        None => rows.push(out),
                        Some(p) => {
                            if p.matches(&out)? {
                                rows.push(out);
                            }
                        }
                    }
                }
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::IndexNlJoin { lkey, table, col, left } => {
            let l = run(left, db)?;
            let t = db.table(table)?;
            let ix = db
                .index_on(table, col)
                .ok_or_else(|| DbError::Semantic(format!("no index on {table}.{col}")))?;
            let ki = l.schema().index_of(lkey)?;
            let mut rows = Vec::new();
            for lt in l.tuples() {
                if lt[ki].is_null() {
                    continue;
                }
                if let Some(rids) = ix.map.get(&lt[ki].key()) {
                    for &rid in rids {
                        rows.push(lt.concat(&t.rows[rid]));
                    }
                }
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::HashAgg { group_by, aggs, input } => {
            let r = run(input, db)?;
            let gi = resolve_keys(group_by, r.schema())?;
            let bound_args: Vec<Option<Expr>> = aggs
                .iter()
                .map(|a| a.arg.as_ref().map(|e| e.bound(r.schema())).transpose())
                .collect::<tango_algebra::Result<_>>()?;
            struct Group {
                reprs: Vec<Value>,
                accs: Vec<Acc>,
            }
            let mut order: Vec<Vec<Key>> = Vec::new();
            let mut groups: HashMap<Vec<Key>, Group> = HashMap::new();
            for t in r.tuples() {
                let k: Vec<Key> = gi.iter().map(|&i| t[i].key()).collect();
                let g = groups.entry(k.clone()).or_insert_with(|| {
                    order.push(k);
                    Group {
                        reprs: gi.iter().map(|&i| t[i].clone()).collect(),
                        accs: aggs.iter().map(|a| Acc::new(a.func)).collect(),
                    }
                });
                for (acc, arg) in g.accs.iter_mut().zip(&bound_args) {
                    let v = match arg {
                        Some(e) => Some(e.eval(t)?),
                        None => None,
                    };
                    acc.add(v.as_ref());
                }
            }
            // A global aggregate over an empty input still yields one row.
            if gi.is_empty() && groups.is_empty() {
                order.push(Vec::new());
                groups.insert(
                    Vec::new(),
                    Group {
                        reprs: Vec::new(),
                        accs: aggs.iter().map(|a| Acc::new(a.func)).collect(),
                    },
                );
            }
            let mut rows = Vec::with_capacity(order.len());
            for k in order {
                let g = &groups[&k];
                let mut vals = g.reprs.clone();
                vals.extend(g.accs.iter().map(Acc::finish));
                rows.push(Tuple::new(vals));
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::Distinct { input } => {
            let r = run(input, db)?;
            let mut seen = std::collections::HashSet::new();
            let mut rows = Vec::new();
            for t in r.into_tuples() {
                let k: Vec<Key> = t.values().iter().map(Value::key).collect();
                if seen.insert(k) {
                    rows.push(t);
                }
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
        PlanOp::UnionAll { inputs } => {
            let mut rows = Vec::new();
            for p in inputs {
                let r = run(p, db)?;
                if r.schema().len() != plan.schema.len() {
                    return Err(DbError::Semantic("UNION arity mismatch".into()));
                }
                rows.extend(r.into_tuples());
            }
            Ok(Relation::new(plan.schema.clone(), rows))
        }
    }
}

fn resolve_keys(names: &[String], schema: &Schema) -> Result<Vec<usize>> {
    names.iter().map(|n| schema.index_of(n).map_err(DbError::from)).collect()
}

fn key_cmp(l: &Tuple, li: &[usize], r: &Tuple, ri: &[usize]) -> std::cmp::Ordering {
    for (&a, &b) in li.iter().zip(ri) {
        let o = l[a].total_cmp(&r[b]);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    std::cmp::Ordering::Equal
}

/// Aggregate accumulator (no removal; the DBMS aggregates whole groups).
enum Acc {
    Count(i64),
    Sum { int: i64, float: f64, n: i64, saw_float: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl Acc {
    fn new(f: AggFunc) -> Acc {
        match f {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum { int: 0, float: 0.0, n: 0, saw_float: false },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn add(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(n) => {
                if v.is_none_or(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            Acc::Sum { int, float, n, saw_float } => match v {
                Some(Value::Int(i)) => {
                    *int += i;
                    *n += 1;
                }
                Some(Value::Date(d)) => {
                    *int += *d as i64;
                    *n += 1;
                }
                Some(Value::Double(d)) => {
                    *float += d;
                    *n += 1;
                    *saw_float = true;
                }
                _ => {}
            },
            Acc::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| v.sql_cmp(c) == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(v.clone());
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| v.sql_cmp(c) == Some(std::cmp::Ordering::Greater))
                    {
                        *cur = Some(v.clone());
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum += x;
                    *n += 1;
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n),
            Acc::Sum { int, float, n, saw_float } => {
                if *n == 0 {
                    Value::Null
                } else if *saw_float {
                    Value::Double(*float + *int as f64)
                } else {
                    Value::Int(*int)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *n as f64)
                }
            }
        }
    }
}
