//! Deterministic fault injection for the simulated wire.
//!
//! The paper's middleware talks to Oracle over JDBC, a link that in the
//! wild drops connections, stalls, and times out. The seed repo's wire
//! could only succeed; this module makes it failable **on demand and
//! reproducibly**: a [`FaultInjector`] is consulted once per round trip
//! and may return a [`Fault`] — a latency spike, a throughput throttle,
//! a transient error, a connection drop, or a fatal failure.
//!
//! The stock injector, [`FaultPlan`], supports two triggering styles
//! that compose:
//!
//! * **scripted** faults fire on exact round-trip ordinals (the Nth
//!   round trip ever made on the link), which is how the chaos tests
//!   force a retry or a re-plan at a precise point in an execution, and
//! * **probabilistic** faults drawn from a fixed-seed deterministic RNG
//!   (the vendored `rand` shim is xoshiro256**, identical on every
//!   platform), optionally capped by a fault *budget* so a retry loop
//!   is guaranteed to eventually succeed.
//!
//! Injection is off unless an injector is installed on the
//! [`crate::Link`]; the disabled path costs one relaxed atomic load per
//! *batch* round trip and allocates nothing (see `Link::transfer`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected wire fault, as returned by a [`FaultInjector`].
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Add fixed extra latency to the affected transfer (a congestion
    /// spike). The transfer still succeeds.
    Spike(Duration),
    /// Multiply the affected transfer's duration by this factor (slow
    /// fetch / throttled link). The transfer still succeeds.
    Throttle(f64),
    /// The transfer fails with a retryable error (ORA-03113 style:
    /// "end-of-file on communication channel").
    Transient(String),
    /// The server side drops the connection; retryable, since the
    /// simulated driver reconnects transparently.
    Disconnect,
    /// The transfer fails and retrying is pointless (authentication
    /// revoked, protocol corruption, ...).
    Fatal(String),
}

impl Fault {
    /// Whether this fault makes the transfer fail (vs. merely slowing
    /// it down). Failing faults are the ones a budget limits.
    pub fn is_error(&self) -> bool {
        matches!(self, Fault::Transient(_) | Fault::Disconnect | Fault::Fatal(_))
    }
}

/// A failed wire transfer.
///
/// `charged` is the wire time the doomed attempt still cost (round
/// trips made before the failure surfaced) — the retry loop charges it
/// against the connection's meter so failures are not free.
#[derive(Debug, Clone)]
pub struct WireFailure {
    /// Retrying cannot help when set.
    pub fatal: bool,
    /// Driver-style error text.
    pub msg: String,
    /// Wire time consumed by the failed attempt.
    pub charged: Duration,
}

impl std::fmt::Display for WireFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Decides, per link round trip, whether a fault occurs.
///
/// `roundtrip` is the 1-based ordinal of the round trip across the
/// link's lifetime, so scripted schedules are exact and reproducible.
pub trait FaultInjector: Send + Sync {
    /// Return the fault to apply to this round trip, if any.
    fn inject(&self, roundtrip: u64) -> Option<Fault>;
}

/// The standard [`FaultInjector`]: scripted faults at exact round-trip
/// ordinals plus seeded probabilistic faults, with an optional budget
/// capping how many *failing* faults are ever injected.
pub struct FaultPlan {
    scripted: Vec<(u64, Fault)>,
    transient_prob: f64,
    spike_prob: f64,
    spike: Duration,
    throttle_prob: f64,
    throttle_factor: f64,
    /// Max failing (error) faults ever injected; latency faults are
    /// outside the budget because they cannot defeat a retry loop.
    max_errors: u64,
    rng: Mutex<StdRng>,
    errors_injected: AtomicU64,
    faults_injected: AtomicU64,
}

impl FaultPlan {
    /// A plan with no probabilistic component: faults fire exactly at
    /// the scripted round-trip ordinals (1-based) and nowhere else.
    pub fn scripted(faults: impl IntoIterator<Item = (u64, Fault)>) -> FaultPlan {
        FaultPlan {
            scripted: faults.into_iter().collect(),
            transient_prob: 0.0,
            spike_prob: 0.0,
            spike: Duration::ZERO,
            throttle_prob: 0.0,
            throttle_factor: 1.0,
            max_errors: u64::MAX,
            rng: Mutex::new(StdRng::seed_from_u64(0)),
            errors_injected: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
        }
    }

    /// A plan injecting transient errors with probability
    /// `transient_prob` per round trip, drawn from a fixed-seed RNG
    /// (identical sequence on every platform and run).
    pub fn random(seed: u64, transient_prob: f64) -> FaultPlan {
        let mut p = FaultPlan::scripted([]);
        p.transient_prob = transient_prob;
        p.rng = Mutex::new(StdRng::seed_from_u64(seed));
        p
    }

    /// Also inject latency spikes of `magnitude` with probability `prob`.
    pub fn with_spikes(mut self, prob: f64, magnitude: Duration) -> FaultPlan {
        self.spike_prob = prob;
        self.spike = magnitude;
        self
    }

    /// Also throttle transfers by `factor` (≥ 1.0) with probability `prob`.
    pub fn with_throttle(mut self, prob: f64, factor: f64) -> FaultPlan {
        self.throttle_prob = prob;
        self.throttle_factor = factor;
        self
    }

    /// Cap the number of failing faults (transients/disconnects/fatals)
    /// this plan will ever inject — with a budget below the retry
    /// attempts available, a transient-only schedule is guaranteed to
    /// let the query through eventually.
    pub fn with_budget(mut self, max_errors: u64) -> FaultPlan {
        self.max_errors = max_errors;
        self
    }

    /// Add one scripted fault at the given 1-based round-trip ordinal.
    pub fn with_fault_at(mut self, roundtrip: u64, fault: Fault) -> FaultPlan {
        self.scripted.push((roundtrip, fault));
        self
    }

    /// How many failing faults have been injected so far.
    pub fn errors_injected(&self) -> u64 {
        self.errors_injected.load(Ordering::Relaxed)
    }

    /// How many faults of any kind have been injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    fn record(&self, f: Fault) -> Option<Fault> {
        if f.is_error() {
            if self.errors_injected.load(Ordering::Relaxed) >= self.max_errors {
                return None;
            }
            self.errors_injected.fetch_add(1, Ordering::Relaxed);
        }
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
        Some(f)
    }
}

impl FaultInjector for FaultPlan {
    fn inject(&self, roundtrip: u64) -> Option<Fault> {
        if let Some((_, f)) = self.scripted.iter().find(|(at, _)| *at == roundtrip) {
            return self.record(f.clone());
        }
        if self.transient_prob <= 0.0 && self.spike_prob <= 0.0 && self.throttle_prob <= 0.0 {
            return None;
        }
        // draw in a fixed order so the sequence is reproducible
        let mut rng = self.rng.lock();
        let transient = rng.gen_bool(self.transient_prob);
        let spike = rng.gen_bool(self.spike_prob);
        let throttle = rng.gen_bool(self.throttle_prob);
        drop(rng);
        if transient {
            if let Some(f) = self.record(Fault::Transient(format!(
                "ORA-03113: end-of-file on communication channel (round trip {roundtrip})"
            ))) {
                return Some(f);
            }
        }
        if spike {
            return self.record(Fault::Spike(self.spike));
        }
        if throttle {
            return self.record(Fault::Throttle(self.throttle_factor));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_faults_fire_exactly_once_at_their_ordinal() {
        let p = FaultPlan::scripted([(3, Fault::Disconnect)]);
        assert_eq!(p.inject(1), None);
        assert_eq!(p.inject(2), None);
        assert_eq!(p.inject(3), Some(Fault::Disconnect));
        assert_eq!(p.inject(4), None);
        assert_eq!(p.errors_injected(), 1);
    }

    #[test]
    fn random_plan_is_deterministic_across_instances() {
        let a = FaultPlan::random(42, 0.3).with_spikes(0.2, Duration::from_millis(5));
        let b = FaultPlan::random(42, 0.3).with_spikes(0.2, Duration::from_millis(5));
        let fa: Vec<_> = (1..=200).map(|i| a.inject(i)).collect();
        let fb: Vec<_> = (1..=200).map(|i| b.inject(i)).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().flatten().any(|f| f.is_error()), "p=0.3 over 200 trials must fault");
    }

    #[test]
    fn budget_caps_error_faults_but_not_latency_faults() {
        let p = FaultPlan::random(7, 1.0).with_budget(2).with_spikes(1.0, Duration::from_micros(1));
        let faults: Vec<_> = (1..=10).filter_map(|i| p.inject(i)).collect();
        let errors = faults.iter().filter(|f| f.is_error()).count();
        assert_eq!(errors, 2, "{faults:?}");
        // after the budget is spent the plan degrades to latency faults
        assert!(faults.iter().any(|f| matches!(f, Fault::Spike(_))), "{faults:?}");
    }
}
