//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::{DbError, Result};
use crate::lexer::{lex, Tok};
use tango_algebra::date::parse_date;
use tango_algebra::{AggFunc, ArithOp, CmpOp, Expr, Type, Value};

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Stmt> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(DbError::Parse { msg: msg.to_string(), near: self.peek().describe() })
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(&format!("expected {kw}"))
        }
    }

    fn is_sym(&self, s: &str) -> bool {
        matches!(self.peek(), Tok::Sym(x) if *x == s)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.is_sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            self.err(&format!("expected '{s}'"))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err("trailing input after statement")
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => {
                Err(DbError::Parse { msg: "expected identifier".into(), near: other.describe() })
            }
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.is_kw("SELECT") || self.is_kw("VALIDTIME") {
            return Ok(Stmt::Select(self.select()?));
        }
        if self.eat_kw("EXPLAIN") {
            return Ok(Stmt::Explain(self.select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("INDEX") {
                let name = self.ident()?;
                self.expect_kw("ON")?;
                let table = self.ident()?;
                self.expect_sym("(")?;
                let col = self.ident()?;
                self.expect_sym(")")?;
                return Ok(Stmt::CreateIndex { name, table, col });
            }
            return self.err("expected TABLE or INDEX after CREATE");
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let mut if_exists = false;
            if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                if_exists = true;
            }
            let name = self.ident()?;
            return Ok(Stmt::DropTable { name, if_exists });
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect_sym("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.literal()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                rows.push(row);
                if !self.eat_sym(",") {
                    break;
                }
            }
            return Ok(Stmt::Insert { table, rows });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let pred = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
            return Ok(Stmt::Delete { table, pred });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_sym("=")?;
                sets.push((col, self.expr()?));
                if !self.eat_sym(",") {
                    break;
                }
            }
            let pred = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
            return Ok(Stmt::Update { table, sets, pred });
        }
        if self.eat_kw("ANALYZE") {
            self.expect_kw("TABLE")?;
            let table = self.ident()?;
            // Oracle syntax: ANALYZE TABLE t COMPUTE STATISTICS
            self.eat_kw("COMPUTE");
            self.eat_kw("STATISTICS");
            return Ok(Stmt::Analyze { table });
        }
        self.err("expected SELECT, EXPLAIN, CREATE, DROP, INSERT, DELETE, UPDATE, or ANALYZE")
    }

    fn create_table(&mut self) -> Result<Stmt> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut cols = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_name = self.ident()?;
            let ty = match ty_name.to_uppercase().as_str() {
                "INT" | "INTEGER" | "NUMBER" | "BIGINT" | "SMALLINT" => Type::Int,
                "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" => Type::Double,
                "VARCHAR" | "VARCHAR2" | "CHAR" | "TEXT" => Type::Str,
                "DATE" => Type::Date,
                other => return self.err(&format!("unknown type {other}")),
            };
            if self.eat_sym("(") {
                // length parameter, ignored
                self.bump();
                self.expect_sym(")")?;
            }
            cols.push((col, ty));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Stmt::CreateTable { name, cols })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        let mut block = self.select_block()?;
        if self.eat_kw("UNION") {
            let op = if self.eat_kw("ALL") { SetOp::UnionAll } else { SetOp::Union };
            let rest = self.select()?;
            block.set_op = Some((op, Box::new(rest)));
            // ORDER BY after a union applies to the whole result; our
            // grammar attaches it to the last block, which the planner
            // hoists.
        }
        Ok(block)
    }

    fn select_block(&mut self) -> Result<SelectStmt> {
        let validtime = self.eat_kw("VALIDTIME");
        let coalesce = validtime && self.eat_kw("COALESCE");
        self.expect_kw("SELECT")?;
        let mut s = SelectStmt { validtime, coalesce, ..SelectStmt::default() };
        if let Tok::Hint(h) = self.peek() {
            s.hint = match h.to_uppercase().as_str() {
                "USE_NL" => Some(JoinHint::UseNl),
                "USE_MERGE" => Some(JoinHint::UseMerge),
                "USE_HASH" => Some(JoinHint::UseHash),
                _ => None,
            };
            self.bump();
        }
        if self.eat_kw("DISTINCT") {
            s.distinct = true;
        }
        loop {
            s.items.push(self.select_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        loop {
            s.from.push(self.from_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        if self.eat_kw("WHERE") {
            s.where_ = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                s.group_by.push(self.qualified_name()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            s.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let col = self.qualified_name()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                s.order_by.push((col, desc));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        Ok(s)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.is_sym("*") {
            self.bump();
            return Ok(SelectItem::Star);
        }
        // aggregate call?
        if let Tok::Ident(name) = self.peek().clone() {
            let func = match name.to_uppercase().as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "AVG" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                if self.toks.get(self.pos + 1) == Some(&Tok::Sym("(")) {
                    self.bump(); // name
                    self.bump(); // (
                    let arg = if self.eat_sym("*") { None } else { Some(self.expr()?) };
                    self.expect_sym(")")?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Agg { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        // bare alias: an identifier that is not a clause keyword
        if let Tok::Ident(s) = self.peek() {
            let up = s.to_uppercase();
            const CLAUSES: &[&str] = &[
                "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "UNION", "AND", "OR", "ON", "ASC",
                "DESC",
            ];
            if !CLAUSES.contains(&up.as_str()) {
                let s = s.clone();
                self.bump();
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    // parses the FROM-clause grammar production (not a conversion)
    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem> {
        if self.eat_sym("(") {
            let query = self.select()?;
            self.expect_sym(")")?;
            // subqueries require an alias (Oracle-style inline view)
            let alias = match self.alias()? {
                Some(a) => a,
                None => return self.err("inline view requires an alias"),
            };
            return Ok(FromItem::Subquery { query: Box::new(query), alias });
        }
        let name = self.ident()?;
        let alias = self.alias()?;
        Ok(FromItem::Table { name, alias })
    }

    fn qualified_name(&mut self) -> Result<String> {
        let mut name = self.ident()?;
        if self.eat_sym(".") {
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    fn literal(&mut self) -> Result<Value> {
        if self.eat_kw("NULL") {
            return Ok(Value::Null);
        }
        if self.is_kw("DATE") {
            self.bump();
            if let Tok::Str(s) = self.bump() {
                return Ok(Value::Date(parse_date(&s)?));
            }
            return self.err("expected date literal string");
        }
        let neg = self.eat_sym("-");
        match self.bump() {
            Tok::IntNumber(n) => Ok(Value::Int(if neg { -n } else { n })),
            Tok::Number(n) => Ok(Value::Double(if neg { -n } else { n })),
            Tok::Str(s) if !neg => Ok(Value::Str(s)),
            other => Err(DbError::Parse { msg: "expected literal".into(), near: other.describe() }),
        }
    }

    // ---- expressions ----

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("OR") {
            let r = self.and_expr()?;
            e = Expr::or(e, r);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("AND") {
            let r = self.not_expr()?;
            e = Expr::and(e, r);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            return Ok(Expr::not(self.not_expr()?));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let l = self.add_expr()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull(Box::new(l), negated));
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            return Ok(Expr::and(Expr::cmp(CmpOp::Ge, l.clone(), lo), Expr::cmp(CmpOp::Le, l, hi)));
        }
        let op = match self.peek() {
            Tok::Sym("=") => Some(CmpOp::Eq),
            Tok::Sym("<>") => Some(CmpOp::Ne),
            Tok::Sym("<") => Some(CmpOp::Lt),
            Tok::Sym("<=") => Some(CmpOp::Le),
            Tok::Sym(">") => Some(CmpOp::Gt),
            Tok::Sym(">=") => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let r = self.add_expr()?;
            return Ok(Expr::cmp(op, l, r));
        }
        Ok(l)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = if self.is_sym("+") {
                ArithOp::Add
            } else if self.is_sym("-") {
                ArithOp::Sub
            } else {
                break;
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::Arith(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = if self.is_sym("*") {
                ArithOp::Mul
            } else if self.is_sym("/") {
                ArithOp::Div
            } else {
                break;
            };
            self.bump();
            let r = self.unary_expr()?;
            e = Expr::Arith(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        // NOT is also accepted in operand position: the middleware's
        // untyped expression algebra treats booleans as integers, and the
        // Translator-To-SQL may render such expressions inside arithmetic
        if self.eat_kw("NOT") {
            return Ok(Expr::not(self.unary_expr()?));
        }
        if self.eat_sym("-") {
            let e = self.unary_expr()?;
            return Ok(match e {
                Expr::Lit(Value::Int(i)) => Expr::Lit(Value::Int(-i)),
                Expr::Lit(Value::Double(d)) => Expr::Lit(Value::Double(-d)),
                other => Expr::Arith(ArithOp::Sub, Box::new(Expr::lit(0)), Box::new(other)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.bump() {
            Tok::IntNumber(n) => Ok(Expr::Lit(Value::Int(n))),
            Tok::Number(n) => Ok(Expr::Lit(Value::Double(n))),
            Tok::Str(s) => Ok(Expr::Lit(Value::Str(s))),
            Tok::Ident(name) => {
                let up = name.to_uppercase();
                if up == "NULL" {
                    return Ok(Expr::Lit(Value::Null));
                }
                if up == "DATE" {
                    if let Tok::Str(s) = self.peek().clone() {
                        self.bump();
                        return Ok(Expr::Lit(Value::Date(parse_date(&s)?)));
                    }
                }
                if (up == "GREATEST" || up == "LEAST") && self.is_sym("(") {
                    self.bump();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(if up == "GREATEST" {
                        Expr::Greatest(args)
                    } else {
                        Expr::Least(args)
                    });
                }
                // qualified column reference
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(Expr::col(format!("{name}.{col}")));
                }
                Ok(Expr::col(name))
            }
            other => {
                Err(DbError::Parse { msg: "expected expression".into(), near: other.describe() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure5_select() {
        // The SELECT issued by TRANSFER^M in Figure 5 of the paper.
        let sql = "SELECT A.PosID AS PosID, EmpName, \
                   GREATEST(A.T1, B.T1) AS T1, LEAST(A.T2, B.T2) AS T2, COUNTofPosID \
                   FROM TMP A, POSITION B \
                   WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND A.T2 > B.T1 \
                   ORDER BY PosID";
        let Stmt::Select(s) = parse(sql).unwrap() else { panic!("expected select") };
        assert_eq!(s.items.len(), 5);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding_name(), "A");
        assert!(s.where_.is_some());
        assert_eq!(s.order_by, vec![("PosID".to_string(), false)]);
    }

    #[test]
    fn parse_aggregates_and_grouping() {
        let sql = "SELECT PosID, COUNT(*) AS C, MIN(T1) M FROM POSITION \
                   GROUP BY PosID HAVING COUNT_ > 1 ORDER BY C DESC";
        let Stmt::Select(s) = parse(sql).unwrap() else { panic!() };
        assert!(matches!(s.items[1], SelectItem::Agg { func: AggFunc::Count, arg: None, .. }));
        assert!(
            matches!(&s.items[2], SelectItem::Agg { func: AggFunc::Min, alias: Some(a), .. } if a == "M")
        );
        assert_eq!(s.group_by, vec!["PosID".to_string()]);
        assert!(s.having.is_some());
        assert_eq!(s.order_by, vec![("C".to_string(), true)]);
    }

    #[test]
    fn parse_subquery_union_hint() {
        let sql = "SELECT /*+ USE_NL */ X.g FROM \
                   (SELECT PosID AS g, T1 t FROM P UNION ALL SELECT PosID, T2 FROM P) X \
                   WHERE X.g > 3";
        let Stmt::Select(s) = parse(sql).unwrap() else { panic!() };
        assert_eq!(s.hint, Some(JoinHint::UseNl));
        let FromItem::Subquery { query, alias } = &s.from[0] else { panic!() };
        assert_eq!(alias, "X");
        assert!(query.set_op.is_some());
    }

    #[test]
    fn parse_ddl_dml() {
        assert!(matches!(
            parse("CREATE TABLE T (A INT, B VARCHAR(20), C DATE)").unwrap(),
            Stmt::CreateTable { cols, .. } if cols.len() == 3 && cols[2].1 == Type::Date
        ));
        assert!(matches!(
            parse("INSERT INTO T VALUES (1, 'x', DATE '1995-01-01'), (2, NULL, NULL)").unwrap(),
            Stmt::Insert { rows, .. } if rows.len() == 2 && rows[0][2] == Value::Date(9131)
        ));
        assert!(matches!(
            parse("DROP TABLE IF EXISTS T").unwrap(),
            Stmt::DropTable { if_exists: true, .. }
        ));
        assert!(matches!(
            parse("ANALYZE TABLE T COMPUTE STATISTICS").unwrap(),
            Stmt::Analyze { .. }
        ));
        assert!(matches!(parse("CREATE INDEX I ON T (A)").unwrap(), Stmt::CreateIndex { .. }));
    }

    #[test]
    fn parse_between_and_is_null() {
        let Stmt::Select(s) =
            parse("SELECT A FROM T WHERE A BETWEEN 1 AND 5 AND B IS NOT NULL").unwrap()
        else {
            panic!()
        };
        let w = s.where_.unwrap();
        assert_eq!(w.conjuncts().len(), 3);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("CREATE TABLE T (A BOGUS)").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM (SELECT b FROM t)").is_err()); // missing alias
    }

    #[test]
    fn date_literals_in_expressions() {
        let Stmt::Select(s) =
            parse("SELECT A FROM T WHERE T1 < DATE '1997-02-08' AND T2 > DATE '1997-02-01'")
                .unwrap()
        else {
            panic!()
        };
        let w = s.where_.unwrap();
        assert!(w.to_string().contains("DATE '1997-02-08'"));
    }
}
