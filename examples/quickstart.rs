//! Quickstart: the paper's worked example (Section 2.2 / Figure 3),
//! end to end through the TANGO middleware.
//!
//! We create the POSITION relation of Figure 3(a) in the embedded
//! "conventional DBMS", then ask the middleware two temporal-SQL
//! questions:
//!
//! 1. the temporal aggregation of Figure 3(c) — how many employees hold
//!    each position, at every point in time;
//! 2. the full example query of Figure 3(b) — each POSITION tuple
//!    enriched with that time-varying count (a temporal join).
//!
//! Run with: `cargo run --example quickstart`

use tango::core::Tango;
use tango::minidb::{Connection, Database, Link, LinkProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A fresh embedded DBMS with a simulated client/server wire.
    let db = Database::new(Link::new(LinkProfile::default()));
    let conn = Connection::new(db.clone());

    // 2. Create and fill POSITION — Figure 3(a): Tom holds position 1
    //    over [2, 20), Jane over [5, 25), Tom holds position 2 over [5, 10).
    conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")?;
    conn.execute(
        "INSERT INTO POSITION VALUES (1, 'Tom', 2, 20), (1, 'Jane', 5, 25), (2, 'Tom', 5, 10)",
    )?;
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS")?;

    // The DBMS itself has no temporal support:
    match conn.query("VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID") {
        Err(e) => println!("DBMS says: {e}\n"),
        Ok(_) => unreachable!("the conventional DBMS must reject VALIDTIME"),
    }

    // 3. Attach the TANGO middleware on top.
    let mut tango = Tango::connect(db);

    // 4. Temporal aggregation — Figure 3(c).
    let (agg, report) = tango.query(
        "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID ORDER BY PosID",
    )?;
    println!("How many employees hold each position, over time (Figure 3c):");
    println!("{agg}\n");
    println!("chosen plan:\n{}", report.optimized.explain());

    // 5. The full example query — Figure 3(b): each position tuple with
    //    the time-varying employee count (temporal join of the
    //    aggregation with POSITION).
    let (result, report) = tango.query(
        "VALIDTIME SELECT P.PosID, P.EmpName, A.Cnt FROM \
           (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID) A, \
           POSITION P \
         WHERE A.PosID = P.PosID ORDER BY P.PosID",
    )?;
    println!("Each assignment with the concurrent head count (Figure 3b):");
    println!("{result}\n");
    println!("chosen plan:\n{}", report.optimized.explain());
    println!(
        "optimization: {:?} ({} equivalence classes, {} elements); execution: {:?} (+{:?} wire)",
        report.optimized.optimize_time,
        report.optimized.classes,
        report.optimized.elements,
        report.exec.wall,
        report.exec.wire,
    );
    Ok(())
}
