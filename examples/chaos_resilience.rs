//! Fault-injected wire, retries and graceful re-planning — end to end.
//!
//! The simulated JDBC link is made hostile with a seeded [`FaultPlan`]:
//! first a transient blip the connection's retry policy absorbs, then a
//! scripted schedule that exhausts the retry budget on the `TRANSFER^M`
//! submission and forces the engine to **re-plan** — evaluating the DBMS
//! fragment with middleware operators over plain base-table fetches. In
//! both cases the result is identical to the fault-free run, and
//! `EXPLAIN ANALYZE` shows the `fault` / `retry` / `replan` span events
//! plus the wire counters.
//!
//! Run with: `cargo run --example chaos_resilience`

use std::sync::Arc;
use tango::minidb::{Connection, Database, Fault, FaultPlan, Link, LinkProfile, RetryPolicy};
use tango::Tango;

const QUERY1: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS CNT FROM POSITION \
                      GROUP BY PosID ORDER BY PosID";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new(Link::new(LinkProfile::default()));
    let conn = Connection::new(db.clone());
    conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")?;
    conn.execute("INSERT INTO POSITION VALUES (1,'Tom',2,20),(1,'Jane',5,25),(2,'Tom',5,10)")?;
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS")?;

    let mut tango = Tango::connect(db.clone());
    let optimized = tango.optimize(QUERY1)?;
    let (baseline, _) = tango.execute_physical(&optimized.plan)?;
    println!("fault-free baseline: {} rows", baseline.len());

    // -- a transient blip: absorbed by one retry ----------------------
    let rt = db.link().roundtrips();
    db.link().set_injector(Arc::new(FaultPlan::scripted([(
        rt + 1,
        Fault::Transient("ORA-03113: end-of-file on communication channel".into()),
    )])));
    let (rel, exec) = tango.execute_physical(&optimized.plan)?;
    db.link().clear_injector();
    assert!(rel.list_eq(&baseline));
    println!("\n== transient blip, retried transparently ==");
    println!("{}", optimized.explain_analyze(&exec, true));

    // -- retry budget exhausted: the engine re-plans ------------------
    tango.conn_mut().set_retry_policy(RetryPolicy { max_attempts: 3, ..RetryPolicy::default() });
    let rt = db.link().roundtrips();
    db.link().set_injector(Arc::new(FaultPlan::scripted([
        (rt + 1, Fault::Transient("chaos".into())),
        (rt + 2, Fault::Disconnect),
        (rt + 3, Fault::Transient("chaos".into())),
    ])));
    let (rel, exec) = tango.execute_physical(&optimized.plan)?;
    db.link().clear_injector();
    assert!(rel.multiset_eq(&baseline));
    println!("== submission failed 3×, fragment re-planned in the middleware ==");
    println!("{}", optimized.explain_analyze(&exec, true));
    println!(
        "session meters: {} faults, {} retries, wire {:?}",
        tango.conn().wire_faults(),
        tango.conn().wire_retries(),
        tango.conn().wire_time(),
    );
    Ok(())
}
