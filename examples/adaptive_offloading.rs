//! Adaptive cost-based offloading — the crossover of the paper's Query 3.
//!
//! A temporal self-join ("which employee pairs held the same position at
//! the same time?") is cheap in the DBMS while its selection is tight,
//! but once the join result outgrows the arguments the DBMS plan pays to
//! sort and ship a huge result, and evaluating the temporal join in the
//! middleware wins.
//!
//! This example sweeps the selection bound and shows, per step:
//! * the measured time of both fixed strategies,
//! * which strategy the cost-based optimizer picked,
//! * how runtime feedback nudges the cost factors between steps.
//!
//! Run with: `cargo run --release --example adaptive_offloading`

use tango::core::phys::Algo;
use tango::core::Tango;
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::uis::{generate_position, UisConfig};
use tango_algebra::date::{day, format_date};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = UisConfig { position_rows: 20_000, employee_rows: 8_000, seed: 0xEC1 };
    println!("generating POSITION x{} ...", cfg.position_rows);
    let db = Database::new(Link::new(LinkProfile::default()));
    let conn = Connection::new(db.clone());
    let position = generate_position(&cfg);
    db.create_table("POSITION", position.schema().as_ref().clone())?;
    db.insert_rows("POSITION", position.into_tuples())?;
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS")?;

    let mut tango = Tango::connect(db.clone());
    tango.calibrate()?;
    tango.options_mut().feedback = true; // adapt factors from observations

    println!("\n{:>12} {:>10} {:>12} {:>14}   chosen", "T1 <", "rows", "time", "p_tm (µs/B)");
    for year in [1986, 1990, 1994, 1998, 2000] {
        let bound = day(year, 1, 1);
        let sql = format!(
            "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
             WHERE A.PosID = B.PosID AND A.T1 < DATE '{0}' AND B.T1 < DATE '{0}' \
             ORDER BY A.PosID",
            format_date(bound)
        );
        db.link().reset();
        let (rel, report) = tango.query(&sql)?;
        let site = if report.optimized.plan.any(&|a| matches!(a, Algo::TMergeJoinM(_))) {
            "temporal join in MIDDLEWARE"
        } else {
            "temporal join in DBMS"
        };
        println!(
            "{:>12} {:>10} {:>11.2}s {:>14.3}   {site}",
            format_date(bound),
            rel.len(),
            report.total().as_secs_f64(),
            tango.factors().p_tm,
        );
    }
    println!(
        "\nThe optimizer keeps tight selections in the DBMS and moves the join \
         into the middleware once the result outgrows its arguments; the p_tm \
         column shows the transfer cost factor adapting from observed runs."
    );
    Ok(())
}
