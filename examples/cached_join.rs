//! The middleware-resident relation cache — cold run, warm run, and the
//! cost-driven plan flip of Figure 10.
//!
//! Over a deliberately glacial wire (50 ms round trips, 16 KB/s) we run
//! the paper's temporal join twice: the cold run ships the DBMS
//! fragments across the wire and caches them; the warm run answers the
//! same query without a single SQL round trip (every `TRANSFER^M` is a
//! `cache hit`). A write to POSITION then invalidates the residency
//! and the next run is cold again. Finally, the optimizer itself reacts
//! to residency: with the aggregation argument resident, `TAGGR`
//! migrates from the DBMS into the middleware — and migrates back when
//! the cache is cleared.
//!
//! Run with: `cargo run --example cached_join`

use tango::algebra::{tup, Attr, Schema, Type, Value};
use tango::core::cost::CostFactors;
use tango::core::phys::Algo;
use tango::minidb::{Database, Link, LinkProfile, WireMode};
use tango::Tango;

const JOIN: &str = "VALIDTIME SELECT P.PosID, Cnt, P.EmpID FROM \
                      (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
                       GROUP BY PosID) A, POSITION P \
                    WHERE A.PosID = P.PosID AND P.PayRate > 5 ORDER BY P.PosID";
const AGG: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                   GROUP BY PosID ORDER BY PosID";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slow, high-latency link: exactly the regime where middleware
    // residency pays (the wire is simulated, so the example runs fast).
    let glacial = LinkProfile {
        roundtrip_latency_us: 50_000.0,
        bytes_per_sec: 16.0 * 1024.0,
        row_prefetch: 10,
        mode: WireMode::Virtual,
    };
    let db = Database::new(Link::new(glacial));
    let schema = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", schema)?;
    // 2 positions, staggered assignments — the aggregate collapses to a
    // handful of constant periods
    db.insert_rows(
        "POSITION",
        (0..4_000i64)
            .map(|i| tup![i % 2, i, Value::Double(9.0), (i % 10) * 5, (i % 10) * 5 + 12])
            .collect(),
    )?;
    db.analyze("POSITION")?;
    db.link().reset();

    let mut tango = Tango::connect(db.clone());
    tango.calibrate()?;
    db.link().reset();

    // -- cold: the DBMS fragments cross the wire and become resident --
    let (cold_rel, cold) = tango.query(JOIN)?;
    println!("== cold run: {} rows, total {:?} ==", cold_rel.len(), cold.exec.total());
    println!("{}", cold.optimized.explain_analyze(&cold.exec, true));

    // -- warm: same answer, zero SQL round trips ----------------------
    let before = db.link().roundtrips();
    let (warm_rel, warm) = tango.query(JOIN)?;
    assert!(warm_rel.list_eq(&cold_rel));
    assert_eq!(db.link().roundtrips(), before, "warm run must stay off the wire");
    println!(
        "== warm run: {} rows, total {:?}, 0 round trips ==",
        warm_rel.len(),
        warm.exec.total()
    );
    println!("{}", warm.optimized.explain_analyze(&warm.exec, true));
    let stats = tango.cache().stats();
    println!(
        "cache: {} hits, {} misses, {} bytes resident\n",
        stats.hits,
        stats.misses,
        tango.cache().bytes()
    );

    // -- a write invalidates the residency ----------------------------
    db.insert_rows("POSITION", vec![tup![2i64, 9_999i64, Value::Double(42.0), 0, 60]])?;
    db.analyze("POSITION")?;
    let (fresh_rel, _) = tango.query(JOIN)?;
    println!(
        "== after INSERT: residency invalidated, fresh answer has {} rows ==",
        fresh_rel.len()
    );
    println!(
        "cache: {} invalidations, {} misses total\n",
        tango.cache().stats().invalidations,
        tango.cache().stats().misses
    );

    // -- Figure 10: residency flips the aggregation's placement -------
    tango.clear_cache();
    let cold_plan = tango.optimize(AGG)?;
    assert!(cold_plan.plan.any(&|a| matches!(a, Algo::TAggrD { .. })));
    println!("cold plan (nothing resident, est {:.0}us):", cold_plan.est_cost_us);
    println!("{}", cold_plan.explain());

    // Stage the residency Figure 10 describes: run the middleware
    // variant once (forced by skewed factors, standing in for an earlier
    // middleware-heavy query) so its *argument* fragment becomes
    // resident, then restore the calibrated factors and re-optimize.
    let calibrated = *tango.factors();
    tango.set_factors(CostFactors { p_tm: 1e-9, p_taggd1: 1e9, ..Default::default() });
    let forced = tango.optimize(AGG)?;
    tango.execute_physical(&forced.plan)?;
    tango.set_factors(calibrated);

    let warm_plan = tango.optimize(AGG)?;
    println!("warm plan (argument resident, est {:.0}us):", warm_plan.est_cost_us);
    println!("{}", warm_plan.explain());
    if warm_plan.plan.any(&|a| matches!(a, Algo::TAggrM { .. })) {
        println!("-> TAGGR migrated into the middleware to exploit residency");
    }

    tango.clear_cache();
    let cleared = tango.optimize(AGG)?;
    assert!(cleared.plan.any(&|a| matches!(a, Algo::TAggrD { .. })));
    println!("-> cache cleared: TAGGR migrates back to the DBMS");
    Ok(())
}
