//! History auditing with the extension operators: coalescing, temporal
//! difference and duplicate elimination.
//!
//! The paper lists coalescing, difference and duplicate elimination as
//! operators "that may later be added to TANGO" — this reproduction
//! implements them in the middleware algorithm library. The example uses
//! them directly as cursors over data fetched through the middleware:
//!
//! 1. coalesce an employee's fragmented assignment history into maximal
//!    periods,
//! 2. compute when position 1 was staffed but position 2 was not
//!    (temporal difference),
//! 3. deduplicate an auditing log with repeated rows.
//!
//! Run with: `cargo run --example history_audit`

use std::sync::Arc;
use tango::algebra::{tup, Attr, Relation, Schema, SortSpec, Type};
use tango::xxl::{collect, Coalesce, DupElim, TemporalDiff, VecScan};

fn staffing(rows: Vec<tango::algebra::Tuple>) -> Relation {
    let schema = Arc::new(Schema::with_inferred_period(vec![
        Attr::new("Who", Type::Str),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]));
    let mut r = Relation::new(schema, rows);
    r.sort_by(&SortSpec::by(["Who", "T1"]));
    r
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Coalescing: Ana's contract was renewed back-to-back three times,
    //    and once after a gap.
    let history = staffing(vec![
        tup!["Ana", 0, 30],
        tup!["Ana", 30, 60],
        tup!["Ana", 60, 90],
        tup!["Ana", 120, 150],
        tup!["Bo", 10, 40],
        tup!["Bo", 35, 70], // overlapping correction record
    ]);
    println!("raw assignment history:\n{history}\n");
    let coalesced = collect(Box::new(Coalesce::new(Box::new(VecScan::new(history)))?))?;
    println!("coalesced into maximal periods:\n{coalesced}\n");

    // 2. Temporal difference: when was position P staffed while Q was not?
    let p = staffing(vec![tup!["staffed", 0, 100]]);
    let q = staffing(vec![tup!["staffed", 20, 40], tup!["staffed", 70, 80]]);
    let gaps = collect(Box::new(TemporalDiff::new(
        Box::new(VecScan::new(p)),
        Box::new(VecScan::new(q)),
    )?))?;
    println!("P staffed while Q unstaffed (temporal difference):\n{gaps}\n");

    // 3. Duplicate elimination over a noisy audit log.
    let log = staffing(vec![
        tup!["Ana", 0, 30],
        tup!["Ana", 0, 30],
        tup!["Bo", 10, 40],
        tup!["Ana", 0, 30],
    ]);
    let distinct = collect(Box::new(DupElim::new(Box::new(VecScan::new(log)))))?;
    println!("audit log after duplicate elimination:\n{distinct}");
    Ok(())
}
