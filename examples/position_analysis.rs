//! Temporal analytics over the UIS dataset — the paper's Query 2 story.
//!
//! We load the synthetic University Information System data (83,857-row
//! POSITION scaled down for the example), then ask: *for each position
//! paying more than $10/h, how many employees held it over time, within
//! a given period?* — a selection + temporal aggregation + temporal join
//! pipeline.
//!
//! The example shows the adaptive partitioning at work: the same
//! temporal-SQL text yields different middleware/DBMS splits depending on
//! how selective the time window is, and the explain output shows where
//! each operator ran.
//!
//! Run with: `cargo run --release --example position_analysis`

use tango::core::Tango;
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::uis::{generate_employee, generate_position, UisConfig};
use tango_algebra::date::{day, format_date};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = UisConfig { position_rows: 20_000, employee_rows: 8_000, seed: 0xEC1 };
    println!(
        "generating UIS data: POSITION x{}, EMPLOYEE x{} ...",
        cfg.position_rows, cfg.employee_rows
    );
    let db = Database::new(Link::new(LinkProfile::default()));
    let conn = Connection::new(db.clone());
    let position = generate_position(&cfg);
    let employee = generate_employee(&cfg);
    db.create_table("POSITION", position.schema().as_ref().clone())?;
    db.insert_rows("POSITION", position.into_tuples())?;
    db.create_table("EMPLOYEE", employee.schema().as_ref().clone())?;
    db.insert_rows("EMPLOYEE", employee.into_tuples())?;
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS")?;
    conn.execute("ANALYZE TABLE EMPLOYEE COMPUTE STATISTICS")?;

    let mut tango = Tango::connect(db.clone());
    println!("calibrating cost factors against this DBMS ...");
    let cal = tango.calibrate()?;
    println!(
        "  p_tm={:.3} µs/B (DBMS->mid transfer)  p_td={:.3} µs/B (mid->DBMS load)",
        cal.factors.p_tm, cal.factors.p_td
    );
    println!(
        "  p_taggm1={:.4} vs p_taggd1={:.4} µs/B — temporal aggregation is ~{:.0}x cheaper in the middleware\n",
        cal.factors.p_taggm1,
        cal.factors.p_taggd1,
        cal.factors.p_taggd1 / cal.factors.p_taggm1
    );

    for (label, end) in [("one tight year", day(1984, 1, 1)), ("most of the data", day(2000, 1, 1))]
    {
        let sql = format!(
            "VALIDTIME SELECT P.PosID, Cnt, P.EmpID FROM \
               (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID) A, \
               POSITION P \
             WHERE A.PosID = P.PosID AND P.PayRate > 10 \
               AND T1 < DATE '{}' AND T2 > DATE '1983-01-01' \
             ORDER BY P.PosID",
            format_date(end)
        );
        db.link().reset();
        let (rel, report) = tango.query(&sql)?;
        println!("window ending {} ({label}): {} result rows", format_date(end), rel.len());
        println!(
            "  total {:.3}s (compute {:.3}s + wire {:.3}s), optimization {:.1?} over {} classes / {} elements",
            report.total().as_secs_f64(),
            report.exec.wall.as_secs_f64(),
            report.exec.wire.as_secs_f64(),
            report.optimized.optimize_time,
            report.optimized.classes,
            report.optimized.elements,
        );
        println!("  chosen plan:\n{}", indent(&report.optimized.explain()));
        // the slowest steps, from the engine's instrumentation
        let mut steps = report.exec.steps.clone();
        steps.sort_by(|a, b| b.exclusive_us.total_cmp(&a.exclusive_us));
        println!("  hottest algorithms:");
        for s in steps.iter().take(3) {
            println!("    {:14} {:9.1}ms   -> {} rows", s.label, s.exclusive_us / 1e3, s.out_rows);
        }
        println!();
    }
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}")).collect::<Vec<_>>().join("\n")
}
